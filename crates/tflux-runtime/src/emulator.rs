//! The TSU Emulator (§4.2 of the paper), after the direct-update split.
//!
//! "The code of the TSU Emulator is executed by an independent POSIX
//! thread." It used to own the whole TSU state machine; with the
//! Synchronization Memory sharded and shared (see [`SoftTsu`]), kernels
//! post-process *application* completions themselves, and the emulator's
//! job shrinks to what genuinely needs one owner:
//!
//! * draining the [TUB](crate::tub::Tub) of Inlet/Outlet completions and
//!   running the block transitions they trigger (loading the next DDM
//!   block, unloading a finished one — serialized by program structure
//!   anyway);
//! * the watchdog: declaring the run stalled, with forensics, when no
//!   completion happens for too long;
//! * collecting TSU protocol errors raised on the kernels' direct path.
//!
//! For robustness the drain loop still accepts *any* completion kind from
//! the TUB — an inline test kernel may publish everything through it.

use crate::faults::FaultInjector;
use crate::soft::SoftTsu;
use crate::stats::{InFlightInstance, StallReport};
use crate::tub::Tub;
use std::time::{Duration, Instant};
use tflux_core::error::CoreError;
use tflux_core::ids::{Epoch, Instance};
use tflux_core::tsu::{ProgramHandle, TsuStats};

/// Why the emulator stopped.
#[derive(Debug)]
pub enum EmulatorExit {
    /// The last block's outlet completed; the program is done.
    Finished(TsuStats),
    /// A TSU protocol error (e.g. a block larger than the TSU capacity),
    /// raised here on a block transition or latched by a kernel on the
    /// direct-update path.
    Protocol(CoreError),
    /// No completion arrived within the watchdog interval while DThreads
    /// were outstanding — some kernel or body is stuck. The report walks
    /// the TSU state at the moment the watchdog fired; the runtime fills
    /// in the per-kernel counters and recorded panics after joining.
    Stalled {
        /// Forensics gathered from the TSU Synchronization Memory.
        report: Box<StallReport>,
    },
}

/// Outcome of one TUB drain round over a `(SoftTsu, Tub)` pair. Shared by
/// the single-program emulator loop below and the multi-program server's
/// supervisor, which multiplexes one such round per tenant.
pub(crate) enum DrainRound {
    /// Block transitions were processed this round.
    Progress,
    /// Nothing arrived through the TUB.
    Idle,
    /// The last block's outlet has completed.
    Finished,
    /// A protocol error surfaced — latched by a kernel or raised by a
    /// block transition here.
    Protocol(CoreError),
}

/// Drain the TUB once and run the block transitions it carried.
pub(crate) fn drain_round<P: ProgramHandle>(
    soft: &SoftTsu<P>,
    tub: &Tub,
    batch: &mut Vec<(Instance, Epoch)>,
    scratch: &mut Vec<Instance>,
) -> DrainRound {
    // a kernel hit a protocol error on the direct path and kicked us
    if let Some(e) = soft.take_protocol_error() {
        return DrainRound::Protocol(e);
    }
    batch.clear();
    let drained = tub.drain_into(batch);
    for &(done, ep) in batch.iter() {
        if let Err(e) = soft.handle_completion(done, ep, scratch) {
            return DrainRound::Protocol(e);
        }
    }
    if soft.finished() {
        return DrainRound::Finished;
    }
    if drained > 0 {
        DrainRound::Progress
    } else {
        DrainRound::Idle
    }
}

/// Watchdog forensics: walk the Synchronization Memory before tearing it
/// down, so the abort names the stuck instances instead of discarding the
/// evidence. Per-kernel counters and panics are filled in by the caller
/// after joining its kernels.
pub(crate) fn stall_report<P: ProgramHandle>(
    soft: &SoftTsu<P>,
    tub: &Tub,
    idle: Duration,
) -> StallReport {
    let gm = soft.graph();
    StallReport {
        idle,
        stats: soft.stats(),
        tub: tub.stats().snapshot(),
        waiting: soft.waiting_instances(),
        in_flight: soft
            .running_instances()
            .into_iter()
            .map(|i| InFlightInstance {
                instance: i,
                kernel: gm.owner_of(i),
            })
            .collect(),
        queue_depths: soft.queue_depths(),
        kernels: Vec::new(),
        panics: Vec::new(),
    }
}

/// Run the TSU Emulator until the program finishes or fails.
///
/// On any exit path the kernels' queues are shut down, so kernel threads
/// always terminate. Progress, for the watchdog, is any completion — the
/// direct-update counter covers the kernels' App completions, the TUB
/// drain covers block transitions. The `injector` can jitter the drain
/// loop (`drain_jitter` site); pass [`NoFaults`](crate::faults::NoFaults)
/// for a production run.
pub fn run_emulator<P: ProgramHandle, F: FaultInjector>(
    soft: &SoftTsu<P>,
    tub: &Tub,
    watchdog: Duration,
    injector: &F,
) -> EmulatorExit {
    let mut batch: Vec<(Instance, Epoch)> = Vec::new();
    let mut scratch: Vec<Instance> = Vec::new();
    let mut last_progress = Instant::now();
    let mut seen_completions = soft.completions();
    let mut round = 0u64;
    loop {
        round += 1;
        if let Some(d) = injector.drain_jitter(round) {
            std::thread::sleep(d);
        }
        match drain_round(soft, tub, &mut batch, &mut scratch) {
            DrainRound::Protocol(e) => {
                soft.shutdown();
                return EmulatorExit::Protocol(e);
            }
            DrainRound::Finished => {
                soft.shutdown();
                return EmulatorExit::Finished(soft.stats());
            }
            DrainRound::Progress => {
                seen_completions = soft.completions();
                last_progress = Instant::now();
                continue;
            }
            DrainRound::Idle => {}
        }
        let completions = soft.completions();
        if completions != seen_completions {
            seen_completions = completions;
            last_progress = Instant::now();
            continue;
        }
        if last_progress.elapsed() >= watchdog {
            let report = stall_report(soft, tub, last_progress.elapsed());
            soft.shutdown();
            return EmulatorExit::Stalled {
                report: Box::new(report),
            };
        }
        tub.wait(Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::NoFaults;
    use std::sync::atomic::{AtomicU64, Ordering};
    use tflux_core::prelude::*;
    use tflux_core::tsu::{FetchResult, TsuConfig};

    fn fork_join(arity: u32) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(blk, ThreadSpec::scalar("src"));
        let work = b.thread(blk, ThreadSpec::new("work", arity));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(src, work, ArcMapping::Broadcast).unwrap();
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        b.build().unwrap()
    }

    /// Emulator + an inline "kernel" on a test thread that publishes every
    /// completion — App included — through the TUB: the drain loop must
    /// accept all kinds, not just block transitions.
    #[test]
    fn emulator_drives_single_inline_kernel() {
        let p = fork_join(4);
        let soft = SoftTsu::new(&p, 1, TsuConfig::default());
        let tub = Tub::new(2);
        let executed = AtomicU64::new(0);

        std::thread::scope(|s| {
            let softref = &soft;
            let tubref = &tub;
            let exec = &executed;
            s.spawn(move || {
                while let FetchResult::Thread(i, ep) = softref.queue(0).pop() {
                    exec.fetch_add(1, Ordering::Relaxed);
                    tubref.push(i, ep);
                }
            });
            let exit = run_emulator(softref, tubref, Duration::from_secs(30), &NoFaults);
            match exit {
                EmulatorExit::Finished(stats) => {
                    assert_eq!(stats.completions as usize, p.total_instances());
                }
                other => panic!("unexpected exit {other:?}"),
            }
        });
        assert_eq!(
            executed.load(Ordering::Relaxed) as usize,
            p.total_instances()
        );
    }

    #[test]
    fn watchdog_fires_when_kernels_never_complete() {
        let p = fork_join(2);
        let soft = SoftTsu::new(&p, 1, TsuConfig::default());
        let tub = Tub::new(1);
        // no kernel is running: the inlet is dispatched but never completes
        let exit = run_emulator(&soft, &tub, Duration::from_millis(50), &NoFaults);
        match exit {
            EmulatorExit::Stalled { report } => {
                assert!(report.idle >= Duration::from_millis(50));
                // the inlet was dispatched (armed at construction) and
                // never completed
                let inlet = p.blocks()[0].inlet;
                assert!(
                    report.in_flight.iter().any(|f| f.instance.thread == inlet),
                    "inlet should be in flight: {:?}",
                    report.in_flight
                );
                // the block never loaded (its inlet never completed), so
                // nothing is waiting on producers yet — the in-flight inlet
                // is the whole story
                assert!(report.waiting.is_empty(), "{:?}", report.waiting);
                assert_eq!(report.queue_depths.len(), 1);
            }
            other => panic!("unexpected exit {other:?}"),
        }
        // queue was shut down: a kernel popping now drains then exits
        assert!(matches!(
            soft.queue(0).try_pop(),
            FetchResult::Thread(..) | FetchResult::Exit
        ));
    }

    #[test]
    fn protocol_error_reported_for_oversized_block() {
        let p = fork_join(64);
        let soft = SoftTsu::new(
            &p,
            1,
            TsuConfig {
                capacity: 8,
                policy: Default::default(),
                ..Default::default()
            },
        );
        let tub = Tub::new(1);
        std::thread::scope(|s| {
            let softref = &soft;
            let tubref = &tub;
            s.spawn(move || {
                while let FetchResult::Thread(i, ep) = softref.queue(0).pop() {
                    tubref.push(i, ep);
                }
            });
            let exit = run_emulator(softref, tubref, Duration::from_secs(5), &NoFaults);
            assert!(matches!(
                exit,
                EmulatorExit::Protocol(CoreError::BlockTooLarge { .. })
            ));
        });
    }

    #[test]
    fn latched_kernel_protocol_error_aborts_the_run() {
        let p = fork_join(2);
        let soft = SoftTsu::new(&p, 1, TsuConfig::default());
        let tub = Tub::new(1);
        let bogus = Instance::new(ThreadId(1), Context(0));
        soft.record_protocol(CoreError::NotRunning(bogus));
        tub.kick();
        let exit = run_emulator(&soft, &tub, Duration::from_secs(5), &NoFaults);
        match exit {
            EmulatorExit::Protocol(CoreError::NotRunning(i)) => assert_eq!(i, bogus),
            other => panic!("unexpected exit {other:?}"),
        }
    }
}
