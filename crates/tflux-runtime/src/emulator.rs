//! The TSU Emulator (§4.2 of the paper).
//!
//! "The code of the TSU Emulator is executed by an independent POSIX thread
//! which runs on an available CPU." The emulator owns the global TSU state
//! machine; its loop drains the TUB, runs the Post-Processing Phase for each
//! completed DThread (decrementing consumers' ready counts in the
//! Synchronization Memories), locates each consumer's owning kernel directly
//! via the Thread-to-Kernel Table (*Thread Indexing* — `DdmProgram::
//! kernel_of` is that table), and pushes newly-ready instances onto the
//! owning kernel's ready queue.

use crate::faults::FaultInjector;
use crate::sm::ReadyQueue;
use crate::stats::{InFlightInstance, StallReport};
use crate::tub::Tub;
use std::time::{Duration, Instant};
use tflux_core::error::CoreError;
use tflux_core::ids::Instance;
use tflux_core::program::DdmProgram;
use tflux_core::tsu::{TsuConfig, TsuState, TsuStats};

/// Why the emulator stopped.
#[derive(Debug)]
pub enum EmulatorExit {
    /// The last block's outlet completed; the program is done.
    Finished(TsuStats),
    /// A TSU protocol error (e.g. a block larger than the TSU capacity).
    Protocol(CoreError),
    /// No completion arrived within the watchdog interval while DThreads
    /// were outstanding — some kernel or body is stuck. The report walks
    /// the TSU state at the moment the watchdog fired; the runtime fills
    /// in the per-kernel counters and recorded panics after joining.
    Stalled {
        /// Forensics gathered from the TSU Synchronization Memory.
        report: Box<StallReport>,
    },
}

/// Configuration for one emulator run.
#[derive(Clone, Copy, Debug)]
pub struct EmulatorConfig {
    /// TSU capacity / scheduling policy.
    pub tsu: TsuConfig,
    /// Watchdog: abort if no completion arrives for this long while work is
    /// outstanding. Guards tests and the figure harness against deadlocking
    /// application bodies.
    pub watchdog: Duration,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        EmulatorConfig {
            tsu: TsuConfig::default(),
            watchdog: Duration::from_secs(30),
        }
    }
}

/// Run the TSU Emulator until the program finishes or fails.
///
/// On any exit path the kernels' queues are shut down, so kernel threads
/// always terminate. The `injector` can jitter the drain loop
/// (`drain_jitter` site); pass [`NoFaults`](crate::faults::NoFaults) for a
/// production run.
pub fn run_emulator<F: FaultInjector>(
    program: &DdmProgram,
    queues: &[ReadyQueue],
    tub: &Tub,
    config: EmulatorConfig,
    injector: &F,
) -> EmulatorExit {
    let kernels = queues.len() as u32;
    let mut tsu = TsuState::new(program, kernels, config.tsu);

    let shutdown_all = |queues: &[ReadyQueue]| {
        for q in queues {
            q.shutdown();
        }
    };

    let mut ready: Vec<Instance> = Vec::new();
    let mut completions: Vec<Instance> = Vec::new();

    // Arm the kernels with the first block's inlet. (With a GlobalFifo
    // policy there is a single shared queue; the index clamp routes
    // everything there.)
    tsu.drain_ready(&mut ready);
    for inst in ready.drain(..) {
        let k = program.kernel_of(inst, kernels);
        queues[k.idx().min(queues.len() - 1)].push(inst);
    }

    let mut last_progress = Instant::now();
    let mut round = 0u64;
    loop {
        round += 1;
        if let Some(d) = injector.drain_jitter(round) {
            std::thread::sleep(d);
        }
        completions.clear();
        if tub.drain_into(&mut completions) == 0 {
            if last_progress.elapsed() >= config.watchdog {
                // Watchdog forensics: walk the Synchronization Memory
                // before tearing it down, so the abort names the stuck
                // instances instead of discarding the evidence.
                let report = StallReport {
                    idle: last_progress.elapsed(),
                    stats: *tsu.stats(),
                    tub: tub.stats().snapshot(),
                    waiting: tsu.waiting_instances(),
                    in_flight: tsu
                        .running_instances()
                        .into_iter()
                        .map(|i| InFlightInstance {
                            instance: i,
                            kernel: program.kernel_of(i, kernels),
                        })
                        .collect(),
                    queue_depths: queues.iter().map(|q| q.len()).collect(),
                    kernels: Vec::new(),
                    panics: Vec::new(),
                };
                shutdown_all(queues);
                return EmulatorExit::Stalled {
                    report: Box::new(report),
                };
            }
            tub.wait(Duration::from_millis(1));
            continue;
        }
        last_progress = Instant::now();

        for &done in completions.iter() {
            ready.clear();
            if let Err(e) = tsu.complete_into(done, &mut ready) {
                shutdown_all(queues);
                return EmulatorExit::Protocol(e);
            }
            for &inst in ready.iter() {
                tsu.dispatch(inst);
                let k = program.kernel_of(inst, kernels);
                queues[k.idx().min(queues.len() - 1)].push(inst);
            }
        }

        if tsu.finished() {
            shutdown_all(queues);
            return EmulatorExit::Finished(*tsu.stats());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::NoFaults;
    use std::sync::atomic::{AtomicU64, Ordering};
    use tflux_core::prelude::*;

    fn fork_join(arity: u32) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(blk, ThreadSpec::scalar("src"));
        let work = b.thread(blk, ThreadSpec::new("work", arity));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(src, work, ArcMapping::Broadcast).unwrap();
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        b.build().unwrap()
    }

    /// Emulator + an inline "kernel" on the test thread.
    #[test]
    fn emulator_drives_single_inline_kernel() {
        let p = fork_join(4);
        let queues = vec![ReadyQueue::new()];
        let tub = Tub::new(2);
        let executed = AtomicU64::new(0);

        std::thread::scope(|s| {
            let qref = &queues;
            let tubref = &tub;
            let pref = &p;
            let exec = &executed;
            s.spawn(move || {
                while let crate::sm::Fetched::Thread(i) = qref[0].pop() {
                    exec.fetch_add(1, Ordering::Relaxed);
                    tubref.push(i);
                }
            });
            let exit = run_emulator(pref, qref, tubref, EmulatorConfig::default(), &NoFaults);
            match exit {
                EmulatorExit::Finished(stats) => {
                    assert_eq!(stats.completions as usize, p.total_instances());
                }
                other => panic!("unexpected exit {other:?}"),
            }
        });
        assert_eq!(
            executed.load(Ordering::Relaxed) as usize,
            p.total_instances()
        );
    }

    #[test]
    fn watchdog_fires_when_kernels_never_complete() {
        let p = fork_join(2);
        let queues = vec![ReadyQueue::new()];
        let tub = Tub::new(1);
        // no kernel is running: the inlet is dispatched but never completes
        let exit = run_emulator(
            &p,
            &queues,
            &tub,
            EmulatorConfig {
                tsu: TsuConfig::default(),
                watchdog: Duration::from_millis(50),
            },
            &NoFaults,
        );
        match exit {
            EmulatorExit::Stalled { report } => {
                assert!(report.idle >= Duration::from_millis(50));
                // the inlet was dispatched and never completed
                let inlet = p.blocks()[0].inlet;
                assert!(
                    report.in_flight.iter().any(|f| f.instance.thread == inlet),
                    "inlet should be in flight: {:?}",
                    report.in_flight
                );
                // the block never loaded (its inlet never completed), so
                // nothing is waiting on producers yet — the in-flight inlet
                // is the whole story
                assert!(report.waiting.is_empty(), "{:?}", report.waiting);
                assert_eq!(report.queue_depths.len(), 1);
            }
            other => panic!("unexpected exit {other:?}"),
        }
        // queue was shut down: a kernel popping now would exit
        assert!(matches!(
            queues[0].try_pop(),
            Some(crate::sm::Fetched::Thread(_)) | Some(crate::sm::Fetched::Exit)
        ));
    }

    #[test]
    fn protocol_error_reported_for_oversized_block() {
        let p = fork_join(64);
        let queues = vec![ReadyQueue::new()];
        let tub = Tub::new(1);
        std::thread::scope(|s| {
            let qref = &queues;
            let tubref = &tub;
            s.spawn(move || {
                while let crate::sm::Fetched::Thread(i) = qref[0].pop() {
                    tubref.push(i);
                }
            });
            let exit = run_emulator(
                &p,
                qref,
                tubref,
                EmulatorConfig {
                    tsu: TsuConfig {
                        capacity: 8,
                        policy: Default::default(),
                    },
                    watchdog: Duration::from_secs(5),
                },
                &NoFaults,
            );
            assert!(matches!(
                exit,
                EmulatorExit::Protocol(CoreError::BlockTooLarge { .. })
            ));
        });
    }
}
