//! Multi-tenant program server: many DDM programs sharing one kernel pool,
//! with per-program fault isolation, bounded admission, and overload
//! shedding.
//!
//! The single-program [`Runtime`](crate::Runtime) owns its kernels for the
//! duration of one `run`. A [`ProgramServer`] instead keeps a pool of
//! kernel OS threads alive and lets callers *submit* programs while others
//! drain. Each admitted program (a *tenant*) gets a *private arena*: its
//! own [`SoftTsu`] — Graph Memory, sharded Synchronization Memory, ready
//! queues — plus its own [TUB](crate::tub::Tub) and panic sink, so no
//! scheduling state is shared between programs. The pool kernels multiplex
//! over the resident arenas under a weighted round-robin
//! [`ServiceRotor`](tflux_core::tsu::ServiceRotor) discipline; one
//! supervisor thread multiplexes the TSU-Emulator duties (TUB drains,
//! block transitions, watchdog) across tenants and runs admission.
//!
//! **Fault isolation.** A body panic, a poisoned Synchronization Memory,
//! a TSU protocol error, a per-program deadline, or a watchdog expiry
//! cancels and evicts *only* the affected tenant: its queues are shut
//! down, its in-flight bodies drain (late completions are discarded, never
//! published into the dead arena), and its submitter receives the
//! [`RuntimeError`] through the [`Admission`] handle — while co-resident
//! programs run to correct completion on the same kernels.
//!
//! **Admission control.** The pending queue is bounded
//! ([`ServerConfig::queue_depth`]); at most
//! [`ServerConfig::max_resident`] programs hold arenas at once. When the
//! queue is full, [`Submit::Block`] parks the submitter and
//! [`Submit::Reject`] sheds the load with a structured
//! [`SubmitError::Overloaded`] — never a stall or a panic.
//!
//! One caveat, by design: a kernel wedged *inside* a DThread body (a body
//! that never returns) cannot be reclaimed — eviction stops the tenant's
//! scheduling, not a non-cooperative body. Co-resident tenants keep
//! progressing on the remaining kernels, so pool sizing (`kernels ≥ 2`)
//! bounds the blast radius of a single wedged body.

use crate::body::BodyTable;
use crate::emulator::{drain_round, stall_report, DrainRound};
use crate::faults::FaultPlan;
use crate::kernel::{execute_body, PanicSink};
use crate::runtime::{RetryPolicy, RuntimeError};
use crate::soft::SoftTsu;
use crate::stats::TenantReport;
use crate::tub::{Tub, TubBackoff};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use tflux_core::error::CoreError;
use tflux_core::ids::{Epoch, Instance, KernelId, ProgramId};
use tflux_core::program::DdmProgram;
use tflux_core::thread::ThreadKind;
use tflux_core::tsu::{FetchResult, ServiceRotor, TsuBackend, TsuConfig};

/// Configuration of a [`ProgramServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Kernel threads in the shared pool.
    pub kernels: u32,
    /// Programs that may hold arenas concurrently; further admissions wait
    /// in the pending queue.
    pub max_resident: usize,
    /// Bound of the pending admission queue; a full queue blocks or sheds
    /// submitters depending on their [`Submit`] mode.
    pub queue_depth: usize,
    /// TUB segments per tenant.
    pub tub_segments: usize,
    /// TSU capacity and scheduling policy of every tenant arena.
    pub tsu: TsuConfig,
    /// Evict a tenant when none of its DThreads completes for this long.
    pub watchdog: Duration,
    /// All-busy backoff of every tenant TUB.
    pub tub_backoff: TubBackoff,
    /// What pool kernels do with panicking bodies.
    pub retry: RetryPolicy,
}

impl ServerConfig {
    /// Defaults with `kernels` pool threads: 8 resident programs, a
    /// 32-deep admission queue, 2 TUB segments per tenant, unlimited TSU
    /// capacity, 30 s watchdog, no panic retry.
    pub fn with_kernels(kernels: u32) -> Self {
        ServerConfig {
            kernels: kernels.max(1),
            max_resident: 8,
            queue_depth: 32,
            tub_segments: 2,
            tsu: TsuConfig::default(),
            watchdog: Duration::from_secs(30),
            tub_backoff: TubBackoff::default(),
            retry: RetryPolicy::default(),
        }
    }

    /// Override the resident-program bound (clamped to ≥ 1).
    pub fn max_resident(mut self, n: usize) -> Self {
        self.max_resident = n.max(1);
        self
    }

    /// Override the pending-queue bound (clamped to ≥ 1).
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n.max(1);
        self
    }

    /// Override the per-tenant TSU configuration.
    pub fn tsu(mut self, tsu: TsuConfig) -> Self {
        self.tsu = tsu;
        self
    }

    /// Override the per-tenant watchdog interval.
    pub fn watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Override the panic retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// What `submit` does when the admission queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Submit {
    /// Park the submitting thread until a queue slot frees up (or the
    /// server shuts down).
    Block,
    /// Shed the load: return [`SubmitError::Overloaded`] immediately.
    Reject,
}

/// Why a submission was not accepted. Shedding is structured and
/// non-destructive: the submission simply never entered the server.
#[derive(Debug)]
pub enum SubmitError {
    /// The admission queue is full and the submitter chose
    /// [`Submit::Reject`].
    Overloaded {
        /// Programs currently holding arenas.
        resident: usize,
        /// Submissions waiting in the pending queue.
        queued: usize,
        /// The configured [`ServerConfig::queue_depth`] bound.
        limit: usize,
    },
    /// The body table does not match the program (same check as the
    /// single-program runtime, made before the submission is queued).
    BodyTableMismatch {
        /// Threads the program declares.
        expected: usize,
        /// Slots the body table holds.
        got: usize,
    },
    /// The server is shutting down and accepts no new programs.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded {
                resident,
                queued,
                limit,
            } => write!(
                f,
                "server overloaded: {resident} resident, {queued}/{limit} queued"
            ),
            SubmitError::BodyTableMismatch { expected, got } => write!(
                f,
                "body table has {got} slots but the program declares {expected} threads"
            ),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One program offered to a [`ProgramServer`]: the program, its bodies,
/// and per-tenant scheduling/fault knobs.
pub struct Submission {
    program: Arc<DdmProgram>,
    bodies: BodyTable<'static>,
    weight: u32,
    deadline: Option<Duration>,
    faults: FaultPlan,
    epochs: u64,
}

impl Submission {
    /// A submission with weight 1, no deadline, no injected faults, and a
    /// single execution epoch (classic one-shot run).
    ///
    /// Bodies must be `'static` (capture owned state, e.g. `Arc`s): unlike
    /// the scoped single-program runtime, server kernels outlive the
    /// submitting stack frame.
    pub fn new(program: Arc<DdmProgram>, bodies: BodyTable<'static>) -> Self {
        Submission {
            program,
            bodies,
            weight: 1,
            deadline: None,
            faults: FaultPlan::default(),
            epochs: 1,
        }
    }

    /// Make this tenant a long-lived stream: the program graph is replayed
    /// for `epochs` consecutive passes (clamped to ≥ 1) over re-armed
    /// contexts, never re-admitted. The supervisor banks upcoming epochs up
    /// to the arena's credit window ([`TsuConfig::window`]) and retires
    /// drained ones, so at most `window` passes are ever in flight.
    pub fn stream(mut self, epochs: u64) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Set the fairness weight: a weight-`w` tenant receives `w` service
    /// grants per rotor cycle on each kernel (clamped to ≥ 1).
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Set a deadline, measured from admission: a tenant still running
    /// after `deadline` is cancelled and evicted with
    /// [`RuntimeError::Stalled`].
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Thread a seeded fault plan through this tenant's fault sites only —
    /// co-resident tenants see none of its faults.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }
}

/// Handle returned by a successful submission. Dropping it does not cancel
/// the program; the result is simply discarded on delivery.
pub struct Admission {
    id: ProgramId,
    rx: mpsc::Receiver<Result<TenantReport, RuntimeError>>,
}

impl Admission {
    /// The id the server assigned this program.
    pub fn id(&self) -> ProgramId {
        self.id
    }

    /// Block until the program finishes or is evicted.
    ///
    /// # Panics
    /// If the server's supervisor died without delivering a result — a
    /// server bug, never a consequence of program faults (those are
    /// delivered as `Err`).
    pub fn wait(self) -> Result<TenantReport, RuntimeError> {
        self.rx
            .recv()
            .expect("program server dropped without delivering a result")
    }

    /// Non-blocking probe: the result, if already delivered.
    pub fn try_wait(&self) -> Option<Result<TenantReport, RuntimeError>> {
        self.rx.try_recv().ok()
    }
}

/// A queued-but-not-yet-admitted submission.
struct Pending {
    id: ProgramId,
    submission: Submission,
    tx: mpsc::Sender<Result<TenantReport, RuntimeError>>,
}

/// One admitted program: a private arena plus its bookkeeping.
struct Tenant {
    id: ProgramId,
    weight: u32,
    deadline: Option<Duration>,
    /// Total streaming passes this tenant runs (1 = one-shot).
    epochs: u64,
    admitted_at: Instant,
    /// The private arena: this tenant's whole scheduling state.
    soft: SoftTsu<Arc<DdmProgram>>,
    tub: Tub,
    bodies: BodyTable<'static>,
    panics: PanicSink,
    faults: FaultPlan,
    /// Latched at eviction; kernels skip the tenant and discard late
    /// completions once set.
    evicted: AtomicBool,
    executed: AtomicU64,
    retries: AtomicU64,
    poisoned: AtomicU64,
    /// Completions of in-flight bodies that outlived the eviction,
    /// discarded instead of published.
    late: AtomicU64,
    done: Mutex<Option<mpsc::Sender<Result<TenantReport, RuntimeError>>>>,
}

impl Tenant {
    fn new(p: Pending, cfg: &ServerConfig) -> Self {
        let Pending { id, submission, tx } = p;
        let Submission {
            program,
            bodies,
            weight,
            deadline,
            faults,
            epochs,
        } = submission;
        Tenant {
            id,
            weight,
            deadline,
            epochs,
            admitted_at: Instant::now(),
            soft: SoftTsu::new(program, cfg.kernels.max(1), cfg.tsu),
            tub: Tub::with_backoff(cfg.tub_segments, cfg.tub_backoff),
            bodies,
            panics: PanicSink::default(),
            faults,
            evicted: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            late: AtomicU64::new(0),
            done: Mutex::new(Some(tx)),
        }
    }
}

/// State shared by the pool kernels, the supervisor, and submitters.
struct ServerShared {
    config: ServerConfig,
    next_id: AtomicU64,
    /// The resident tenants. Kernels snapshot it on generation change.
    registry: Mutex<Vec<Arc<Tenant>>>,
    /// Bumped on every admit/evict so kernels re-snapshot the registry.
    generation: AtomicU64,
    pending: Mutex<VecDeque<Pending>>,
    /// Rung when a pending slot frees up (and at shutdown).
    pending_cv: Condvar,
    /// Eventcount kernels and the supervisor park on when idle: any
    /// completion, admission, or eviction bumps it.
    work_seq: Mutex<u64>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    /// Set by the supervisor after the last tenant drained; kernels exit.
    done: AtomicBool,
}

impl ServerShared {
    fn work_epoch(&self) -> u64 {
        *self.work_seq.lock()
    }

    fn ring(&self) {
        *self.work_seq.lock() += 1;
        self.work_cv.notify_all();
    }

    /// Park until the eventcount moves past `seen` or `timeout` elapses.
    fn wait_for_work(&self, seen: u64, timeout: Duration) {
        let mut g = self.work_seq.lock();
        if *g == seen {
            self.work_cv.wait_for(&mut g, timeout);
        }
    }
}

/// A shared kernel pool serving many DDM programs with per-program fault
/// isolation. See the module docs for the architecture.
pub struct ProgramServer {
    shared: Arc<ServerShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ProgramServer {
    /// Launch the kernel pool and the supervisor.
    pub fn start(config: ServerConfig) -> Self {
        let config = ServerConfig {
            kernels: config.kernels.max(1),
            max_resident: config.max_resident.max(1),
            queue_depth: config.queue_depth.max(1),
            ..config
        };
        let shared = Arc::new(ServerShared {
            config,
            next_id: AtomicU64::new(0),
            registry: Mutex::new(Vec::new()),
            generation: AtomicU64::new(0),
            pending: Mutex::new(VecDeque::new()),
            pending_cv: Condvar::new(),
            work_seq: Mutex::new(0),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            done: AtomicBool::new(false),
        });
        let mut threads = Vec::with_capacity(config.kernels as usize + 1);
        for k in 0..config.kernels {
            let sh = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                run_pool_kernel(&sh, KernelId(k))
            }));
        }
        let sh = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || run_supervisor(&sh)));
        ProgramServer { shared, threads }
    }

    /// Offer a program. On success the submission is queued (and admitted
    /// by the supervisor as soon as a resident slot frees); the returned
    /// [`Admission`] delivers the result.
    pub fn submit(&self, submission: Submission, mode: Submit) -> Result<Admission, SubmitError> {
        let expected = submission.program.threads().len();
        if submission.bodies.len() != expected {
            return Err(SubmitError::BodyTableMismatch {
                expected,
                got: submission.bodies.len(),
            });
        }
        let mut pending = self.shared.pending.lock();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(SubmitError::ShuttingDown);
            }
            if pending.len() < self.shared.config.queue_depth {
                break;
            }
            match mode {
                Submit::Reject => {
                    return Err(SubmitError::Overloaded {
                        resident: self.shared.registry.lock().len(),
                        queued: pending.len(),
                        limit: self.shared.config.queue_depth,
                    });
                }
                Submit::Block => {
                    self.shared.pending_cv.wait(&mut pending);
                }
            }
        }
        let id = ProgramId(self.shared.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = mpsc::channel();
        pending.push_back(Pending { id, submission, tx });
        drop(pending);
        self.shared.ring(); // wake the supervisor for admission
        Ok(Admission { id, rx })
    }

    /// Programs currently holding arenas.
    pub fn resident(&self) -> usize {
        self.shared.registry.lock().len()
    }

    /// Submissions waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.shared.pending.lock().len()
    }

    /// Poison a resident program's Synchronization Memory, exactly as a
    /// kernel dying mid-update would. The tenant is evicted with
    /// [`RuntimeError::Protocol`]`(`[`CoreError::SmPoisoned`]`)`;
    /// co-resident programs are untouched. Returns `false` if `id` is not
    /// resident (never admitted, already finished, or already evicted).
    pub fn poison(&self, id: ProgramId) -> bool {
        let tenant = self
            .shared
            .registry
            .lock()
            .iter()
            .find(|t| t.id == id)
            .cloned();
        match tenant {
            Some(t) => {
                t.soft.poison();
                t.soft.record_protocol(CoreError::SmPoisoned);
                t.tub.kick();
                self.shared.ring();
                true
            }
            None => false,
        }
    }

    /// Stop accepting submissions, drain every queued and resident
    /// program to its result, and join the pool.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.pending_cv.notify_all(); // blocked submitters: ShuttingDown
        self.shared.ring();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ProgramServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serve one rotor grant from `tenant`: try to fetch and run one instance.
/// Returns whether anything was executed.
fn serve_one(
    shared: &ServerShared,
    tenant: &Tenant,
    kernel: KernelId,
    scratch: &mut Vec<Instance>,
) -> bool {
    let mut backend = &tenant.soft; // &SoftTsu is the TsuBackend
    let (instance, epoch) = match backend.fetch(kernel) {
        Ok(FetchResult::Thread(i, ep)) => (i, ep),
        // Wait: nothing runnable here; Exit: arena shut down by eviction
        Ok(_) => return false,
        Err(e) => {
            // poisoned arena: latch the error for the supervisor to evict
            // on, and move on to the next tenant — this kernel is fine
            tenant.soft.record_protocol(e);
            tenant.tub.kick();
            shared.ring();
            return false;
        }
    };
    let outcome = execute_body(
        kernel,
        instance,
        &tenant.bodies,
        &tenant.panics,
        &tenant.faults,
        shared.config.retry,
    );
    tenant.retries.fetch_add(outcome.retries, Ordering::Relaxed);
    tenant.executed.fetch_add(1, Ordering::Relaxed);
    if tenant.evicted.load(Ordering::Acquire) {
        // the tenant was evicted while this body ran: discard the late
        // completion rather than publish into the dead (maybe poisoned)
        // arena
        tenant.late.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    if !outcome.publish {
        tenant.poisoned.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    match tenant.soft.graph().kind(instance.thread) {
        // direct update into this tenant's private Synchronization Memory;
        // an unwind out of post-processing poisons only this arena
        ThreadKind::App => {
            let completed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                backend.complete(instance, epoch, scratch)
            }));
            match completed {
                Ok(Ok(())) => shared.ring(),
                Ok(Err(e)) => {
                    tenant.soft.record_protocol(e);
                    tenant.tub.kick();
                    shared.ring();
                }
                Err(_) => {
                    tenant.soft.poison();
                    tenant.soft.record_protocol(CoreError::SmPoisoned);
                    tenant.tub.kick();
                    shared.ring();
                }
            }
        }
        // block transitions stay serialized through the supervisor
        ThreadKind::Inlet | ThreadKind::Outlet => {
            tenant.tub.push_with(instance, epoch, &tenant.faults);
            shared.ring();
        }
    }
    true
}

/// One pool kernel: multiplex over the resident arenas in weighted
/// round-robin order, parking on the eventcount when no tenant has work.
fn run_pool_kernel(shared: &ServerShared, kernel: KernelId) {
    let mut rotor = ServiceRotor::new();
    let mut members: Vec<ProgramId> = Vec::new();
    let mut snapshot: Vec<Arc<Tenant>> = Vec::new();
    let mut seen_gen = u64::MAX; // force the first snapshot
    let mut scratch: Vec<Instance> = Vec::new();
    loop {
        let gen = shared.generation.load(Ordering::Acquire);
        if gen != seen_gen {
            seen_gen = gen;
            snapshot = shared.registry.lock().clone();
            let live: Vec<ProgramId> = snapshot.iter().map(|t| t.id).collect();
            for &old in &members {
                if !live.contains(&old) {
                    rotor.evict(old);
                }
            }
            for t in &snapshot {
                rotor.admit(t.id, t.weight);
            }
            members = live;
        }
        if shared.done.load(Ordering::Acquire) {
            break;
        }
        let epoch = shared.work_epoch();
        let mut did_work = false;
        // one sweep: at most one service grant per rotor entry, so a
        // tenant with no runnable work cannot absorb the whole sweep
        for _ in 0..rotor.len() {
            let Some(id) = rotor.next() else { break };
            let Some(tenant) = snapshot.iter().find(|t| t.id == id) else {
                continue;
            };
            if tenant.evicted.load(Ordering::Acquire) {
                continue;
            }
            if serve_one(shared, tenant, kernel, &mut scratch) {
                did_work = true;
            }
        }
        if !did_work {
            shared.wait_for_work(epoch, Duration::from_millis(1));
        }
    }
}

/// Supervisor-side per-tenant watchdog state.
struct Track {
    last_progress: Instant,
    seen_completions: u64,
}

/// Evict `tenant`: latch the flag, shut its queues down, drop it from the
/// registry, and deliver `result` to the submitter.
fn evict_tenant(
    shared: &ServerShared,
    tenant: &Arc<Tenant>,
    result: Result<TenantReport, RuntimeError>,
) {
    tenant.evicted.store(true, Ordering::Release);
    tenant.soft.shutdown();
    // a long-lived stream may hold banked epochs at eviction: retire every
    // fully drained one so the ledger closes before the arena is torn down
    // (epochs cut short mid-pass are abandoned with the arena)
    let (_, completed, mut retired) = tenant.soft.epoch_ledger();
    while retired < completed {
        if tenant.soft.retire_epoch(Epoch(retired)).is_err() {
            break;
        }
        retired += 1;
    }
    shared.registry.lock().retain(|t| t.id != tenant.id);
    shared.generation.fetch_add(1, Ordering::Release);
    shared.ring();
    if let Some(tx) = tenant.done.lock().take() {
        let _ = tx.send(result);
    }
}

/// Advance a streaming tenant's epoch ledger: retire every fully drained
/// epoch (freeing window credits), then bank upcoming passes until the
/// stream's total is reached or the credit window pushes back. Newly
/// re-armed inlets are published straight onto the tenant's ready queues
/// by [`SoftTsu::open_epoch`].
fn stream_advance(tenant: &Tenant, scratch: &mut Vec<Instance>) -> Result<(), CoreError> {
    loop {
        let (_, completed, retired) = tenant.soft.epoch_ledger();
        if retired >= completed {
            break;
        }
        tenant.soft.retire_epoch(Epoch(retired))?;
    }
    loop {
        let (opened, _, _) = tenant.soft.epoch_ledger();
        if opened >= tenant.epochs {
            break;
        }
        match tenant.soft.open_epoch(scratch) {
            Ok(_) => {}
            Err(CoreError::WindowExhausted { .. }) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Admit pending submissions while resident slots are free. Returns
/// whether anything was admitted.
fn admit_pending(shared: &ServerShared) -> bool {
    let mut admitted = false;
    let mut scratch: Vec<Instance> = Vec::new();
    loop {
        if shared.registry.lock().len() >= shared.config.max_resident {
            break;
        }
        let Some(p) = shared.pending.lock().pop_front() else {
            break;
        };
        // a queue slot freed: wake blocked submitters
        shared.pending_cv.notify_all();
        let tenant = Arc::new(Tenant::new(p, &shared.config));
        // a streaming tenant banks its upcoming epochs (window permitting)
        // right at admission so kernels see continuous work
        if tenant.epochs > 1 {
            if let Err(e) = stream_advance(&tenant, &mut scratch) {
                tenant.soft.record_protocol(e);
                tenant.tub.kick();
            }
        }
        shared.registry.lock().push(tenant);
        shared.generation.fetch_add(1, Ordering::Release);
        shared.ring();
        admitted = true;
    }
    admitted
}

/// The supervisor: admission, per-tenant TUB drains and block transitions,
/// per-tenant watchdog/deadline, eviction, and result delivery.
fn run_supervisor(shared: &ServerShared) {
    let cfg = shared.config;
    let mut tracking: HashMap<u64, Track> = HashMap::new();
    let mut batch: Vec<(Instance, Epoch)> = Vec::new();
    let mut scratch: Vec<Instance> = Vec::new();
    loop {
        let mut progressed = admit_pending(shared);
        let epoch = shared.work_epoch();
        let resident: Vec<Arc<Tenant>> = shared.registry.lock().clone();
        for tenant in &resident {
            if tenant.evicted.load(Ordering::Acquire) {
                continue;
            }
            let track = tracking.entry(tenant.id.0).or_insert_with(|| Track {
                last_progress: Instant::now(),
                seen_completions: 0,
            });
            // the deadline cancels even a tenant that is still making
            // progress; the watchdog (below) only fires on genuine idleness
            if tenant
                .deadline
                .is_some_and(|d| tenant.admitted_at.elapsed() >= d)
            {
                let mut report =
                    stall_report(&tenant.soft, &tenant.tub, track.last_progress.elapsed());
                report.panics = std::mem::take(&mut *tenant.panics.lock());
                tracking.remove(&tenant.id.0);
                evict_tenant(
                    shared,
                    tenant,
                    Err(RuntimeError::Stalled {
                        report: Box::new(report),
                    }),
                );
                progressed = true;
                continue;
            }
            // keep a stream's pipeline primed between rounds: retire passes
            // that fully drained and bank new ones the moment window
            // credits free up, so the dataflow never stops-and-goes
            if tenant.epochs > 1 {
                if let Err(e) = stream_advance(tenant, &mut scratch) {
                    tracking.remove(&tenant.id.0);
                    evict_tenant(shared, tenant, Err(RuntimeError::Protocol(e)));
                    progressed = true;
                    continue;
                }
            }
            let outcome = match drain_round(&tenant.soft, &tenant.tub, &mut batch, &mut scratch) {
                DrainRound::Protocol(e) => Some(Err(RuntimeError::Protocol(e))),
                DrainRound::Finished if tenant.soft.epoch_ledger().1 < tenant.epochs => {
                    // a long-lived stream between passes: every banked epoch
                    // drained, more remain — retire and re-arm, no result yet
                    match stream_advance(tenant, &mut scratch) {
                        Ok(()) => {
                            track.seen_completions = tenant.soft.completions();
                            track.last_progress = Instant::now();
                            progressed = true;
                            shared.ring(); // re-armed inlets are runnable
                            None
                        }
                        Err(e) => Some(Err(RuntimeError::Protocol(e))),
                    }
                }
                DrainRound::Finished => {
                    let panics = std::mem::take(&mut *tenant.panics.lock());
                    Some(if panics.is_empty() {
                        Ok(TenantReport {
                            id: tenant.id,
                            wall: tenant.admitted_at.elapsed(),
                            tsu: tenant.soft.stats(),
                            sm_shards: tenant.soft.shard_stats(),
                            executed: tenant.executed.load(Ordering::Relaxed),
                            retries: tenant.retries.load(Ordering::Relaxed),
                            poisoned: tenant.poisoned.load(Ordering::Relaxed),
                        })
                    } else {
                        Err(RuntimeError::BodyPanicked { panics })
                    })
                }
                DrainRound::Progress => {
                    track.seen_completions = tenant.soft.completions();
                    track.last_progress = Instant::now();
                    progressed = true;
                    shared.ring(); // block transitions armed new work
                    None
                }
                DrainRound::Idle => {
                    let c = tenant.soft.completions();
                    if c != track.seen_completions {
                        track.seen_completions = c;
                        track.last_progress = Instant::now();
                        None
                    } else if track.last_progress.elapsed() >= cfg.watchdog {
                        let mut report =
                            stall_report(&tenant.soft, &tenant.tub, track.last_progress.elapsed());
                        report.panics = std::mem::take(&mut *tenant.panics.lock());
                        Some(Err(RuntimeError::Stalled {
                            report: Box::new(report),
                        }))
                    } else {
                        None
                    }
                }
            };
            if let Some(result) = outcome {
                tracking.remove(&tenant.id.0);
                evict_tenant(shared, tenant, result);
                progressed = true;
            }
        }
        if shared.shutdown.load(Ordering::Acquire)
            && shared.registry.lock().is_empty()
            && shared.pending.lock().is_empty()
        {
            break;
        }
        if !progressed {
            shared.wait_for_work(epoch, Duration::from_micros(500));
        }
    }
    shared.done.store(true, Ordering::Release);
    shared.ring();
    shared.pending_cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use tflux_core::prelude::*;

    fn fork_join(arity: u32) -> (Arc<DdmProgram>, ThreadId, ThreadId) {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(blk, ThreadSpec::scalar("src"));
        let work = b.thread(blk, ThreadSpec::new("work", arity));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(src, work, ArcMapping::Broadcast).unwrap();
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        (Arc::new(b.build().unwrap()), work, sink)
    }

    /// A submission whose work thread sums squares into `total`.
    fn sum_of_squares(arity: u32) -> (Submission, Arc<AtomicU64>, usize) {
        let (p, work, sink) = fork_join(arity);
        let partial = Arc::new(crate::shared::SharedVar::<u64>::new(arity));
        let total = Arc::new(AtomicU64::new(0));
        let mut bodies = BodyTable::new(&p);
        {
            let partial = Arc::clone(&partial);
            bodies.set(work, move |c| {
                partial.put(c.context, (c.context.0 as u64).pow(2));
            });
        }
        {
            let total = Arc::clone(&total);
            bodies.set(sink, move |_| {
                total.store(partial.iter().sum(), Ordering::Relaxed);
            });
        }
        let instances = p.total_instances();
        (Submission::new(p, bodies), total, instances)
    }

    fn expected(arity: u64) -> u64 {
        (0..arity).map(|i| i * i).sum()
    }

    #[test]
    fn one_program_round_trips() {
        let server = ProgramServer::start(ServerConfig::with_kernels(2));
        let (sub, total, instances) = sum_of_squares(16);
        let adm = server.submit(sub, Submit::Block).unwrap();
        assert_eq!(adm.id(), ProgramId(0));
        let report = adm.wait().unwrap();
        assert_eq!(report.id, ProgramId(0));
        assert_eq!(report.executed as usize, instances);
        assert_eq!(report.tsu.completions as usize, instances);
        assert_eq!(total.load(Ordering::Relaxed), expected(16));
        server.shutdown();
    }

    #[test]
    fn many_programs_share_the_pool() {
        let server = ProgramServer::start(
            ServerConfig::with_kernels(3)
                .max_resident(4)
                .queue_depth(64),
        );
        let mut waits = Vec::new();
        for i in 0..12u32 {
            let (sub, total, _) = sum_of_squares(4 + i);
            waits.push((server.submit(sub, Submit::Block).unwrap(), total, 4 + i));
        }
        for (adm, total, arity) in waits {
            let report = adm.wait().unwrap();
            assert!(report.executed > 0, "{:?} starved", report.id);
            assert_eq!(total.load(Ordering::Relaxed), expected(arity as u64));
        }
        assert_eq!(server.resident(), 0);
        server.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_structured_error() {
        let server =
            ProgramServer::start(ServerConfig::with_kernels(1).max_resident(1).queue_depth(1));
        // tenant 0 occupies the one resident slot for a while
        let (p, work, _) = fork_join(2);
        let mut bodies = BodyTable::new(&p);
        bodies.set(work, |_| std::thread::sleep(Duration::from_millis(150)));
        let slow = server
            .submit(Submission::new(p, bodies), Submit::Block)
            .unwrap();
        while server.resident() == 0 {
            std::thread::yield_now();
        }
        // tenant 1 fills the queue; tenant 2 must be shed, not stalled
        let (sub1, total1, _) = sum_of_squares(4);
        let queued = server.submit(sub1, Submit::Block).unwrap();
        let (sub2, _, _) = sum_of_squares(4);
        match server.submit(sub2, Submit::Reject) {
            Err(SubmitError::Overloaded {
                queued: q, limit, ..
            }) => {
                assert_eq!(limit, 1);
                assert_eq!(q, 1);
            }
            other => panic!("expected Overloaded, got {:?}", other.map(|a| a.id())),
        }
        slow.wait().unwrap();
        queued.wait().unwrap();
        assert_eq!(total1.load(Ordering::Relaxed), expected(4));
        server.shutdown();
    }

    #[test]
    fn body_table_mismatch_is_rejected_up_front() {
        let server = ProgramServer::start(ServerConfig::with_kernels(1));
        // a table shaped for a 1-thread program (3 slots with inlet+outlet)
        // offered with a fork-join (5 slots): rejected before queueing
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(blk, ThreadSpec::scalar("w"));
        let tiny = Arc::new(b.build().unwrap());
        let bodies = BodyTable::new(&tiny);
        let (p, _, _) = fork_join(2);
        match server.submit(Submission::new(p, bodies), Submit::Block) {
            Err(SubmitError::BodyTableMismatch { expected, got }) => {
                assert_eq!(expected, 5);
                assert_eq!(got, 3);
            }
            other => panic!("expected mismatch, got ok={}", other.is_ok()),
        }
        server.shutdown();
    }

    #[test]
    fn body_panic_evicts_only_the_faulty_tenant() {
        let server = ProgramServer::start(ServerConfig::with_kernels(2).max_resident(4));
        let (p, work, _) = fork_join(8);
        let mut bodies = BodyTable::new(&p);
        bodies.set(work, |c| {
            if c.context.0 == 3 {
                panic!("tenant fault");
            }
        });
        let faulty = server
            .submit(Submission::new(p, bodies), Submit::Block)
            .unwrap();
        let (good_sub, total, _) = sum_of_squares(16);
        let good = server.submit(good_sub, Submit::Block).unwrap();
        match faulty.wait() {
            Err(RuntimeError::BodyPanicked { panics }) => {
                assert_eq!(panics.len(), 1);
                assert!(panics[0].message.contains("tenant fault"));
            }
            other => panic!("expected BodyPanicked, got ok={}", other.is_ok()),
        }
        good.wait().unwrap();
        assert_eq!(total.load(Ordering::Relaxed), expected(16));
        server.shutdown();
    }

    #[test]
    fn poisoned_arena_is_isolated_to_its_tenant() {
        let server = ProgramServer::start(ServerConfig::with_kernels(2).max_resident(4));
        // victim: long-running so the poison lands while resident
        let (p, work, _) = fork_join(4);
        let mut bodies = BodyTable::new(&p);
        bodies.set(work, |_| std::thread::sleep(Duration::from_millis(40)));
        let victim = server
            .submit(Submission::new(p, bodies), Submit::Block)
            .unwrap();
        let victim_id = victim.id();
        while server.resident() == 0 {
            std::thread::yield_now();
        }
        let (good_sub, total, _) = sum_of_squares(16);
        let good = server.submit(good_sub, Submit::Block).unwrap();
        assert!(server.poison(victim_id));
        match victim.wait() {
            Err(RuntimeError::Protocol(CoreError::SmPoisoned)) => {}
            other => panic!("expected SmPoisoned, got ok={}", other.is_ok()),
        }
        // the co-resident tenant is bit-correct and saw no poison
        good.wait().unwrap();
        assert_eq!(total.load(Ordering::Relaxed), expected(16));
        assert!(!server.poison(victim_id), "evicted tenant is gone");
        server.shutdown();
    }

    #[test]
    fn deadline_cancels_a_running_tenant() {
        let server = ProgramServer::start(ServerConfig::with_kernels(1).max_resident(2));
        let (p, work, _) = fork_join(64);
        let mut bodies = BodyTable::new(&p);
        // steady progress, but far too slow for the deadline
        bodies.set(work, |_| std::thread::sleep(Duration::from_millis(10)));
        let adm = server
            .submit(
                Submission::new(p, bodies).deadline(Duration::from_millis(60)),
                Submit::Block,
            )
            .unwrap();
        match adm.wait() {
            Err(RuntimeError::Stalled { report }) => {
                assert!(!report.in_flight.is_empty() || !report.waiting.is_empty());
            }
            other => panic!("expected Stalled, got ok={}", other.is_ok()),
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_programs() {
        let server =
            ProgramServer::start(ServerConfig::with_kernels(2).max_resident(1).queue_depth(8));
        let mut waits = Vec::new();
        for _ in 0..5 {
            let (sub, total, _) = sum_of_squares(8);
            waits.push((server.submit(sub, Submit::Block).unwrap(), total));
        }
        server.shutdown(); // must drain all five, not abandon them
        for (adm, total) in waits {
            adm.wait().unwrap();
            assert_eq!(total.load(Ordering::Relaxed), expected(8));
        }
    }

    #[test]
    fn streaming_tenant_replays_the_program() {
        let server = ProgramServer::start(ServerConfig::with_kernels(2).tsu(TsuConfig {
            window: 2,
            ..Default::default()
        }));
        let (p, work, _) = fork_join(8);
        let count = Arc::new(AtomicU64::new(0));
        let mut bodies = BodyTable::new(&p);
        {
            let count = Arc::clone(&count);
            bodies.set(work, move |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        let instances = p.total_instances();
        let report = server
            .submit(Submission::new(p, bodies).stream(4), Submit::Block)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(report.executed as usize, 4 * instances);
        assert_eq!(report.tsu.epochs, 4);
        assert_eq!(report.tsu.completions as usize, 4 * instances);
        assert_eq!(count.load(Ordering::Relaxed), 4 * 8);
        server.shutdown();
    }

    #[test]
    fn evicted_stream_drains_and_spares_cotenants() {
        let server = ProgramServer::start(ServerConfig::with_kernels(2).max_resident(2));
        let (p, work, _) = fork_join(4);
        let mut bodies = BodyTable::new(&p);
        bodies.set(work, |_| std::thread::sleep(Duration::from_millis(15)));
        let stream = server
            .submit(
                Submission::new(p, bodies)
                    .stream(1_000)
                    .deadline(Duration::from_millis(80)),
                Submit::Block,
            )
            .unwrap();
        let (good_sub, total, _) = sum_of_squares(16);
        let good = server.submit(good_sub, Submit::Block).unwrap();
        match stream.wait() {
            Err(RuntimeError::Stalled { .. }) => {}
            other => panic!("expected mid-stream eviction, got ok={}", other.is_ok()),
        }
        good.wait().unwrap();
        assert_eq!(total.load(Ordering::Relaxed), expected(16));
        server.shutdown();
    }

    #[test]
    fn idle_pool_kernel_steals_within_the_tenant_arena() {
        // All `work` instances are pinned to kernel 0's queue in the
        // tenant's arena. Kernel 1's rotor turn finds its own queue empty,
        // so the only way it can ever execute anything is to steal inside
        // the arena; the slow bodies guarantee kernel 0 cannot drain the
        // queue alone before kernel 1 sweeps.
        let server = ProgramServer::start(ServerConfig::with_kernels(2));
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(blk, ThreadSpec::scalar("src"));
        let work = b.thread(
            blk,
            ThreadSpec::new("work", 8).with_affinity(Affinity::Fixed(KernelId(0))),
        );
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(src, work, ArcMapping::Broadcast).unwrap();
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        let p = Arc::new(b.build().unwrap());
        let mut bodies = BodyTable::new(&p);
        bodies.set(work, |_| std::thread::sleep(Duration::from_millis(5)));
        let report = server
            .submit(Submission::new(p, bodies), Submit::Block)
            .unwrap()
            .wait()
            .unwrap();
        assert!(
            report.tsu.steals > 0,
            "expected arena-internal steals, stats: {:?}",
            report.tsu
        );
        assert_eq!(report.executed, 8 + 2 + 2); // work + src/sink + inlet/outlet
        server.shutdown();
    }

    #[test]
    fn weighted_tenants_all_finish() {
        let server = ProgramServer::start(ServerConfig::with_kernels(2).max_resident(6));
        let mut waits = Vec::new();
        for i in 0..6u32 {
            let (sub, total, _) = sum_of_squares(8);
            waits.push((
                server.submit(sub.weight(1 + i % 3), Submit::Block).unwrap(),
                total,
            ));
        }
        for (adm, total) in waits {
            let report = adm.wait().unwrap();
            assert!(report.executed > 0);
            assert_eq!(total.load(Ordering::Relaxed), expected(8));
        }
        server.shutdown();
    }
}
