//! The TFluxSoft runtime: kernel threads + TSU Emulator thread.
//!
//! §3.1: "The runtime support starts its execution by launching n Kernels,
//! where n is the maximum number of DThreads that can execute in parallel in
//! the machine." In TFluxSoft one extra execution entity, the TSU Emulator,
//! runs alongside them (Fig. 4 — on a real machine it occupies one core;
//! here it is simply one more OS thread).

use crate::body::BodyTable;
use crate::emulator::{run_emulator, EmulatorExit};
use crate::faults::{FaultInjector, NoFaults};
use crate::kernel::run_kernel;
use crate::soft::SoftTsu;
use crate::stats::{KernelStats, RunReport, StallReport};
use crate::tub::{Tub, TubBackoff};
use std::time::{Duration, Instant};
use tflux_core::error::CoreError;
use tflux_core::ids::KernelId;
use tflux_core::program::DdmProgram;
use tflux_core::tsu::TsuConfig;

/// What a kernel does with a DThread body that panics.
///
/// A body that opted in as idempotent (see
/// [`BodyTable::mark_idempotent`](crate::BodyTable::mark_idempotent)) is
/// re-dispatched in place up to `max_attempts` total attempts. When the
/// budget is exhausted (or the body never opted in), the panic is recorded
/// and, by default, the completion is still published so the program drains
/// and the run ends with
/// [`RuntimeError::BodyPanicked`]. With `poison_on_exhaust`
/// the completion is withheld instead: the failed instance's consumers
/// never fire, the watchdog trips, and the run ends with a forensic
/// [`StallReport`] naming the poisoned instance — the mode to use when a
/// made-up completion would silently corrupt downstream results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per instance, counting the first (minimum 1).
    pub max_attempts: u32,
    /// Withhold the completion of an instance whose retries are exhausted
    /// instead of publishing it anyway.
    pub poison_on_exhaust: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            poison_on_exhaust: false,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts (clamped to ≥ 1).
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Set whether exhausted instances are poisoned (completion withheld).
    pub fn poison_on_exhaust(mut self, poison: bool) -> Self {
        self.poison_on_exhaust = poison;
        self
    }
}

/// Configuration of a TFluxSoft runtime.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Number of kernel threads (execution nodes).
    pub kernels: u32,
    /// Number of TUB segments (§4.2; more segments, less contention).
    pub tub_segments: usize,
    /// TSU capacity and scheduling policy.
    pub tsu: TsuConfig,
    /// Abort the run if no DThread completes for this long.
    pub watchdog: Duration,
    /// How pushing kernels degrade when every TUB segment stays busy.
    pub tub_backoff: TubBackoff,
    /// What kernels do with panicking bodies.
    pub retry: RetryPolicy,
}

impl RuntimeConfig {
    /// Defaults with `kernels` kernel threads: 4 TUB segments, unlimited TSU
    /// capacity, 30 s watchdog, no panic retry.
    pub fn with_kernels(kernels: u32) -> Self {
        RuntimeConfig {
            kernels,
            tub_segments: 4,
            tsu: TsuConfig::default(),
            watchdog: Duration::from_secs(30),
            tub_backoff: TubBackoff::default(),
            retry: RetryPolicy::default(),
        }
    }

    /// Override the number of TUB segments.
    pub fn tub_segments(mut self, segments: usize) -> Self {
        self.tub_segments = segments;
        self
    }

    /// Override the TSU configuration.
    pub fn tsu(mut self, tsu: TsuConfig) -> Self {
        self.tsu = tsu;
        self
    }

    /// Override the watchdog interval.
    pub fn watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Override the TUB full-segment backoff.
    pub fn tub_backoff(mut self, backoff: TubBackoff) -> Self {
        self.tub_backoff = backoff;
        self
    }

    /// Override the panic retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig::with_kernels(
            std::thread::available_parallelism()
                .map(|n| n.get().saturating_sub(1).max(1) as u32)
                .unwrap_or(1),
        )
    }
}

/// Errors a run can end with.
#[derive(Debug)]
pub enum RuntimeError {
    /// The body table does not match the program.
    BodyTableMismatch {
        /// Threads the program declares.
        expected: usize,
        /// Slots the body table holds.
        got: usize,
    },
    /// A TSU protocol error surfaced during execution.
    Protocol(CoreError),
    /// The watchdog fired: some DThread never completed. The report names
    /// the stuck instances and their remaining ready counts.
    Stalled {
        /// Forensics gathered from the TSU at the moment of the stall.
        report: Box<StallReport>,
    },
    /// One or more DThread bodies panicked. The run still drained (the
    /// kernels contain body panics and publish completions), but the
    /// results must be considered invalid.
    BodyPanicked {
        /// The captured panics, in completion order.
        panics: Vec<crate::kernel::BodyPanic>,
    },
    /// A kernel thread itself died — not a contained body panic but a bug
    /// in the runtime machinery (the kernel loop never unwinds otherwise).
    KernelDied {
        /// The kernel whose thread could not be joined.
        kernel: KernelId,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::BodyTableMismatch { expected, got } => write!(
                f,
                "body table has {got} slots but the program declares {expected} threads"
            ),
            RuntimeError::Protocol(e) => write!(f, "TSU protocol error: {e}"),
            RuntimeError::Stalled { report } => write!(f, "{report}"),
            RuntimeError::BodyPanicked { panics } => write!(
                f,
                "{} DThread bod{} panicked; first: {} at {}",
                panics.len(),
                if panics.len() == 1 { "y" } else { "ies" },
                panics[0].message,
                panics[0].instance
            ),
            RuntimeError::KernelDied { kernel } => write!(
                f,
                "kernel thread {kernel} panicked outside a DThread body (runtime bug)"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            // the TSU protocol error is the underlying cause — expose it so
            // `anyhow`-style chains print "TSU protocol error: …: <cause>"
            RuntimeError::Protocol(e) => Some(e),
            // the stall report and panic list are forensics, not errors;
            // the remaining variants are root causes themselves
            _ => None,
        }
    }
}

/// The TFluxSoft runtime. Create one with a [`RuntimeConfig`], then run DDM
/// programs on it. `run` is synchronous: it launches the kernels and the
/// emulator, executes the program to completion and joins everything.
#[derive(Clone, Copy, Debug)]
pub struct Runtime {
    config: RuntimeConfig,
}

impl Runtime {
    /// A runtime with the given configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        Runtime { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Execute `program` with `bodies` to completion, fault-free.
    ///
    /// Equivalent to [`run_with`](Self::run_with) with [`NoFaults`]; the
    /// injector hooks compile down to nothing on this path.
    pub fn run(
        &self,
        program: &DdmProgram,
        bodies: &BodyTable<'_>,
    ) -> Result<RunReport, RuntimeError> {
        self.run_with(program, bodies, &NoFaults)
    }

    /// Execute `program` with `bodies` to completion, threading `injector`
    /// through every fault site (body dispatch, kernel loop, TUB publish,
    /// emulator drain). Pass a seeded
    /// [`FaultPlan`](crate::faults::FaultPlan) to rehearse failures
    /// deterministically.
    pub fn run_with<F: FaultInjector>(
        &self,
        program: &DdmProgram,
        bodies: &BodyTable<'_>,
        injector: &F,
    ) -> Result<RunReport, RuntimeError> {
        if !bodies_match(bodies, program) {
            return Err(RuntimeError::BodyTableMismatch {
                expected: program.threads().len(),
                got: bodies.len(),
            });
        }
        let kernels = self.config.kernels.max(1);
        // The shared software TSU: Graph Memory, sharded Synchronization
        // Memory and the per-kernel ready queues, armed with the first
        // block's inlet.
        let soft = SoftTsu::new(program, kernels, self.config.tsu);
        let tub = Tub::with_backoff(self.config.tub_segments, self.config.tub_backoff);
        let watchdog = self.config.watchdog;
        let retry = self.config.retry;

        let panic_sink = crate::kernel::PanicSink::default();
        let start = Instant::now();
        let (exit, joined) = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(kernels as usize);
            for k in 0..kernels {
                let soft = &soft;
                let tub = &tub;
                let panic_sink = &panic_sink;
                handles.push(s.spawn(move || {
                    run_kernel(KernelId(k), soft, bodies, tub, panic_sink, injector, retry)
                }));
            }
            // The emulator runs on the caller's thread — the paper's "one
            // CPU devoted to the TSU" (Fig. 4).
            let exit = run_emulator(&soft, &tub, watchdog, injector);
            let joined: Vec<std::thread::Result<KernelStats>> =
                handles.into_iter().map(|h| h.join()).collect();
            (exit, joined)
        });
        let wall = start.elapsed();

        let panics = panic_sink.into_inner();
        let mut kernel_stats = Vec::with_capacity(joined.len());
        let mut dead: Option<KernelId> = None;
        for (k, res) in joined.into_iter().enumerate() {
            match res {
                Ok(s) => kernel_stats.push(s),
                Err(_) => {
                    // body panics are contained in run_kernel; an unwinding
                    // kernel thread means the machinery itself is broken
                    dead.get_or_insert(KernelId(k as u32));
                    kernel_stats.push(KernelStats::default());
                }
            }
        }
        if let Some(kernel) = dead {
            return Err(RuntimeError::KernelDied { kernel });
        }
        match exit {
            EmulatorExit::Finished(tsu) => {
                if !panics.is_empty() {
                    return Err(RuntimeError::BodyPanicked { panics });
                }
                Ok(RunReport {
                    wall,
                    tsu,
                    tub: tub.stats().snapshot(),
                    kernels: kernel_stats,
                    sm_shards: soft.shard_stats(),
                })
            }
            EmulatorExit::Protocol(e) => Err(RuntimeError::Protocol(e)),
            EmulatorExit::Stalled { mut report } => {
                // complete the forensics with what only the runtime knows:
                // the joined kernel counters and the panics recorded before
                // the stall (a poisoned producer is the usual culprit)
                report.kernels = kernel_stats;
                report.panics = panics;
                Err(RuntimeError::Stalled { report })
            }
        }
    }
}

impl Runtime {
    /// Like [`run`](Self::run), additionally recording a wall-clock span
    /// (kernel, start, end) for every executed DThread body — the runtime
    /// counterpart of the simulator's `Machine::run_traced` in `tflux-sim`.
    pub fn run_traced(
        &self,
        program: &DdmProgram,
        bodies: &BodyTable<'_>,
    ) -> Result<(RunReport, Vec<crate::stats::RtSpan>), RuntimeError> {
        use parking_lot::Mutex;
        let epoch = std::time::Instant::now();
        let spans: Mutex<Vec<crate::stats::RtSpan>> = Mutex::new(Vec::new());
        let mut wrapped = BodyTable::new(program);
        for t in 0..program.threads().len() {
            let t = tflux_core::ThreadId(t as u32);
            if bodies.idempotent(t) {
                wrapped.mark_idempotent(t);
            }
            let spans = &spans;
            wrapped.set(t, move |ctx| {
                let start_ns = epoch.elapsed().as_nanos() as u64;
                (bodies.get(ctx.instance.thread))(ctx);
                let end_ns = epoch.elapsed().as_nanos() as u64;
                spans.lock().push(crate::stats::RtSpan {
                    kernel: ctx.kernel.0,
                    instance: ctx.instance,
                    start_ns,
                    end_ns,
                });
            });
        }
        let report = self.run(program, &wrapped)?;
        drop(wrapped);
        Ok((report, spans.into_inner()))
    }
}

fn bodies_match(bodies: &BodyTable<'_>, program: &DdmProgram) -> bool {
    bodies.len() == program.threads().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedVar;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use tflux_core::prelude::*;

    fn fork_join(arity: u32, blocks: u32) -> (DdmProgram, Vec<ThreadId>) {
        let mut b = ProgramBuilder::new();
        let mut works = Vec::new();
        for _ in 0..blocks {
            let blk = b.block();
            let src = b.thread(blk, ThreadSpec::scalar("src"));
            let work = b.thread(blk, ThreadSpec::new("work", arity));
            let sink = b.thread(blk, ThreadSpec::scalar("sink"));
            b.arc(src, work, ArcMapping::Broadcast).unwrap();
            b.arc(work, sink, ArcMapping::Reduction).unwrap();
            works.push(work);
        }
        (b.build().unwrap(), works)
    }

    #[test]
    fn runs_fork_join_on_multiple_kernels() {
        let (p, works) = fork_join(32, 1);
        let counter = AtomicU64::new(0);
        let mut bodies = BodyTable::new(&p);
        bodies.set(works[0], |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        let report = Runtime::new(RuntimeConfig::with_kernels(4))
            .run(&p, &bodies)
            .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        assert_eq!(report.tsu.completions as usize, p.total_instances());
        assert_eq!(report.total_executed() as usize, p.total_instances());
        // only block transitions travel through the TUB now: one inlet and
        // one outlet for the single block — App completions go direct
        assert_eq!(report.tub.pushes, 2);
    }

    #[test]
    fn multi_block_program_runs_blocks_in_order() {
        let (p, works) = fork_join(8, 3);
        let seq = AtomicUsize::new(0);
        let order = parking_lot::Mutex::new(Vec::new());
        let mut bodies = BodyTable::new(&p);
        for (bi, &w) in works.iter().enumerate() {
            let seq = &seq;
            let order = &order;
            bodies.set(w, move |_| {
                let n = seq.fetch_add(1, Ordering::Relaxed);
                order.lock().push((bi, n));
            });
        }
        Runtime::new(RuntimeConfig::with_kernels(3))
            .run(&p, &bodies)
            .unwrap();
        let order = order.lock();
        assert_eq!(order.len(), 24);
        // all block-0 work precedes block-1 work precedes block-2 work
        let mut max_seen = 0usize;
        let mut per_block_max = [0usize; 3];
        for &(bi, n) in order.iter() {
            per_block_max[bi] = per_block_max[bi].max(n);
            max_seen = max_seen.max(n);
        }
        let mut per_block_min = [usize::MAX; 3];
        for &(bi, n) in order.iter() {
            per_block_min[bi] = per_block_min[bi].min(n);
        }
        assert!(per_block_max[0] < per_block_min[1]);
        assert!(per_block_max[1] < per_block_min[2]);
    }

    #[test]
    fn shared_var_pipeline_produces_correct_result() {
        // work[c] = c^2; sink sums — classic reduction through SharedVar
        let (p, works) = fork_join(16, 1);
        let sink = ThreadId(works[0].0 + 1);
        let partial = SharedVar::<u64>::new(16);
        let total = AtomicU64::new(0);
        let mut bodies = BodyTable::new(&p);
        let partial_ref = &partial;
        let total_ref = &total;
        bodies.set(works[0], move |c| {
            partial_ref.put(c.context, (c.context.0 as u64).pow(2));
        });
        bodies.set(sink, move |_| {
            total_ref.store(partial_ref.iter().sum(), Ordering::Relaxed);
        });
        Runtime::new(RuntimeConfig::with_kernels(2))
            .run(&p, &bodies)
            .unwrap();
        assert_eq!(
            total.load(Ordering::Relaxed),
            (0..16u64).map(|i| i * i).sum()
        );
    }

    #[test]
    fn panicking_body_reports_instead_of_hanging() {
        let (p, works) = fork_join(8, 1);
        let mut bodies = BodyTable::new(&p);
        bodies.set(works[0], |c| {
            if c.context.0 == 3 {
                panic!("body exploded");
            }
        });
        let err = Runtime::new(RuntimeConfig::with_kernels(2))
            .run(&p, &bodies)
            .unwrap_err();
        match err {
            RuntimeError::BodyPanicked { panics } => {
                assert_eq!(panics.len(), 1);
                assert!(panics[0].message.contains("exploded"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn stalled_body_trips_watchdog() {
        let (p, works) = fork_join(2, 1);
        let mut bodies = BodyTable::new(&p);
        bodies.set(works[0], |c| {
            if c.context.0 == 0 {
                // a body that never finishes would hang; simulate with a
                // long sleep well past the watchdog
                std::thread::sleep(Duration::from_millis(500));
            }
        });
        let err = Runtime::new(RuntimeConfig::with_kernels(1).watchdog(Duration::from_millis(50)))
            .run(&p, &bodies)
            .unwrap_err();
        match err {
            RuntimeError::Stalled { report } => {
                // the sleeping instance was dispatched and never completed
                assert!(
                    report
                        .in_flight
                        .iter()
                        .any(|f| f.instance.thread == works[0]),
                    "{report}"
                );
                // per-kernel counters were attached after the join
                assert_eq!(report.kernels.len(), 1);
                assert!(report.panics.is_empty());
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn oversized_block_is_a_protocol_error() {
        let (p, _) = fork_join(64, 1);
        let bodies = BodyTable::new(&p);
        let err = Runtime::new(RuntimeConfig::with_kernels(2).tsu(TsuConfig {
            capacity: 4,
            policy: Default::default(),
            ..Default::default()
        }))
        .run(&p, &bodies)
        .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Protocol(CoreError::BlockTooLarge { .. })
        ));
    }

    #[test]
    fn one_kernel_is_equivalent_to_sequential() {
        let (p, works) = fork_join(10, 2);
        let hits = AtomicU64::new(0);
        let mut bodies = BodyTable::new(&p);
        for &w in &works {
            let hits = &hits;
            bodies.set(w, move |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        let report = Runtime::new(RuntimeConfig::with_kernels(1))
            .run(&p, &bodies)
            .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 20);
        assert_eq!(report.kernels.len(), 1);
        assert_eq!(report.kernels[0].executed as usize, p.total_instances());
    }

    #[test]
    fn report_counts_are_consistent() {
        let (p, works) = fork_join(20, 1);
        let mut bodies = BodyTable::new(&p);
        bodies.set(works[0], |_| {});
        let report = Runtime::new(RuntimeConfig::with_kernels(3))
            .run(&p, &bodies)
            .unwrap();
        assert_eq!(report.tsu.fetches, report.tsu.completions);
        assert_eq!(report.total_executed(), report.tsu.completions);
        // the TUB carries exactly one inlet + one outlet per loaded block
        assert_eq!(report.tub.pushes, 2 * report.tsu.blocks_loaded);
        // the per-shard ledger sums to the aggregate rc-update counter
        assert_eq!(
            report.sm_shards.iter().map(|s| s.rc_updates).sum::<u64>(),
            report.tsu.rc_updates
        );
        assert!(report.wall > Duration::ZERO);
    }

    #[test]
    fn global_fifo_policy_shares_one_queue() {
        let (p, works) = fork_join(40, 1);
        let count = AtomicU64::new(0);
        let mut bodies = BodyTable::new(&p);
        bodies.set(works[0], |_| {
            count.fetch_add(1, Ordering::Relaxed);
            // slow enough that several kernels get to the shared queue
            std::thread::sleep(Duration::from_micros(300));
        });
        let report = Runtime::new(RuntimeConfig::with_kernels(4).tsu(TsuConfig {
            capacity: 0,
            policy: tflux_core::SchedulingPolicy::GlobalFifo,
            ..Default::default()
        }))
        .run(&p, &bodies)
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 40);
        assert_eq!(report.total_executed() as usize, p.total_instances());
        // multiple kernels served from the shared queue
        let active = report.kernels.iter().filter(|k| k.executed > 0).count();
        assert!(active >= 2, "only {active} kernels drew from the FIFO");
    }

    #[test]
    fn work_stealing_rebalances_pinned_work() {
        // all 24 instances pinned to kernel 0; with stealing enabled and a
        // slow body, other kernels must take a share
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let w = b.thread(
            blk,
            ThreadSpec::new("w", 24)
                .with_affinity(tflux_core::Affinity::Fixed(tflux_core::KernelId(0))),
        );
        let p = b.build().unwrap();
        let mut bodies = BodyTable::new(&p);
        bodies.set(w, |_| {
            std::thread::sleep(Duration::from_micros(400));
        });
        let report = Runtime::new(RuntimeConfig::with_kernels(4))
            .run(&p, &bodies)
            .unwrap();
        let total_steals: u64 = report.kernels.iter().map(|k| k.steals).sum();
        assert!(total_steals > 0, "no steals despite pinned work");
        let helpers = report
            .kernels
            .iter()
            .skip(1)
            .filter(|k| k.executed > 0)
            .count();
        assert!(helpers >= 1, "no helper kernels executed anything");
    }

    #[test]
    fn no_steal_policy_keeps_pinned_work_on_owner() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let _w = b.thread(
            blk,
            ThreadSpec::new("w", 12)
                .with_affinity(tflux_core::Affinity::Fixed(tflux_core::KernelId(0))),
        );
        let p = b.build().unwrap();
        let bodies = BodyTable::new(&p);
        let report = Runtime::new(RuntimeConfig::with_kernels(3).tsu(TsuConfig {
            capacity: 0,
            policy: tflux_core::SchedulingPolicy::LocalityFirst { steal: false },
            ..Default::default()
        }))
        .run(&p, &bodies)
        .unwrap();
        assert_eq!(report.kernels[0].executed as usize, p.total_instances());
        assert!(report.kernels[1..].iter().all(|k| k.executed == 0));
    }

    #[test]
    fn run_traced_records_every_body() {
        let (p, works) = fork_join(20, 1);
        let mut bodies = BodyTable::new(&p);
        bodies.set(works[0], |_| {
            std::thread::sleep(Duration::from_micros(50));
        });
        let (report, spans) = Runtime::new(RuntimeConfig::with_kernels(3))
            .run_traced(&p, &bodies)
            .unwrap();
        assert_eq!(spans.len(), p.total_instances());
        assert_eq!(report.total_executed() as usize, spans.len());
        for s in &spans {
            assert!(s.end_ns >= s.start_ns);
            assert!(s.kernel < 3);
        }
        // spans on one kernel never overlap (bodies run serially per kernel)
        let mut by_kernel: std::collections::HashMap<u32, Vec<_>> = Default::default();
        for s in &spans {
            by_kernel.entry(s.kernel).or_default().push(*s);
        }
        for spans in by_kernel.values_mut() {
            spans.sort_by_key(|s| s.start_ns);
            for w in spans.windows(2) {
                assert!(w[1].start_ns >= w[0].end_ns, "{w:?}");
            }
        }
    }

    #[test]
    fn multi_kernel_panics_drain_and_report_under_both_policies() {
        // several panicking instances across 3 kernels: the run must drain
        // fully (no stall) and report every panic, whichever scheduling
        // policy routes the work
        let policies = [
            tflux_core::SchedulingPolicy::GlobalFifo,
            tflux_core::SchedulingPolicy::LocalityFirst { steal: true },
        ];
        for policy in policies {
            let (p, works) = fork_join(16, 1);
            let mut bodies = BodyTable::new(&p);
            bodies.set(works[0], |c| {
                if c.context.0 % 4 == 0 {
                    panic!("chaos at {:?}", c.context);
                }
            });
            let err = Runtime::new(RuntimeConfig::with_kernels(3).tsu(TsuConfig {
                capacity: 0,
                policy,
                ..Default::default()
            }))
            .run(&p, &bodies)
            .unwrap_err();
            match err {
                RuntimeError::BodyPanicked { panics } => {
                    let mut contexts: Vec<u32> = panics
                        .iter()
                        .map(|b| {
                            assert_eq!(b.instance.thread, works[0]);
                            assert_eq!(b.attempts, 1);
                            b.instance.context.0
                        })
                        .collect();
                    contexts.sort_unstable();
                    assert_eq!(contexts, vec![0, 4, 8, 12], "policy {policy:?}");
                }
                other => panic!("policy {policy:?}: unexpected {other}"),
            }
        }
    }

    #[test]
    fn idempotent_body_retry_recovers() {
        let (p, works) = fork_join(8, 1);
        let first_attempts = AtomicU64::new(0);
        let mut bodies = BodyTable::new(&p);
        let first_attempts_ref = &first_attempts;
        bodies.set_idempotent(works[0], move |c| {
            // context 2 fails exactly once, then succeeds on retry
            if c.context.0 == 2 && first_attempts_ref.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient failure");
            }
        });
        let report = Runtime::new(RuntimeConfig::with_kernels(2).retry(RetryPolicy::attempts(3)))
            .run(&p, &bodies)
            .unwrap();
        assert_eq!(report.total_retries(), 1);
        assert_eq!(report.total_poisoned(), 0);
        assert_eq!(report.tsu.completions as usize, p.total_instances());
        assert_eq!(first_attempts.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn non_idempotent_body_is_not_retried() {
        let (p, works) = fork_join(8, 1);
        let mut bodies = BodyTable::new(&p);
        bodies.set(works[0], |c| {
            if c.context.0 == 2 {
                panic!("always fails");
            }
        });
        // a generous retry budget must not apply without the idempotent flag
        let err = Runtime::new(RuntimeConfig::with_kernels(2).retry(RetryPolicy::attempts(3)))
            .run(&p, &bodies)
            .unwrap_err();
        match err {
            RuntimeError::BodyPanicked { panics } => {
                assert_eq!(panics.len(), 1);
                assert_eq!(panics[0].attempts, 1);
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn exhausted_retries_surface_attempt_count() {
        let (p, works) = fork_join(4, 1);
        let mut bodies = BodyTable::new(&p);
        bodies.set_idempotent(works[0], |c| {
            if c.context.0 == 1 {
                panic!("permanent failure");
            }
        });
        let err = Runtime::new(RuntimeConfig::with_kernels(1).retry(RetryPolicy::attempts(3)))
            .run(&p, &bodies)
            .unwrap_err();
        match err {
            RuntimeError::BodyPanicked { panics } => {
                assert_eq!(panics.len(), 1);
                assert_eq!(panics[0].attempts, 3);
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn many_kernels_more_than_work_still_terminate() {
        let (p, _) = fork_join(2, 1);
        let bodies = BodyTable::new(&p);
        let report = Runtime::new(RuntimeConfig::with_kernels(8))
            .run(&p, &bodies)
            .unwrap();
        assert_eq!(report.kernels.len(), 8);
        assert_eq!(report.total_executed() as usize, p.total_instances());
    }
}
