//! The shared software TSU of TFluxSoft: Graph Memory + lock-free
//! Synchronization Memory + per-kernel ready queues, behind
//! [`TsuBackend`].
//!
//! This is the direct-update redesign of §4.2: instead of funnelling every
//! completion through the single TSU-Emulator thread, kernels publish
//! *application* completions straight into the
//! [`SyncMemory`] — now a lock-free table of
//! atomic ready-count slots, so kernels completing producers decrement
//! their consumers' counts without taking any lock. Only Inlet/Outlet completions
//! (block loading/unloading, which the paper serializes anyway: a block
//! loads only after the previous outlet) still travel through the
//! [TUB](crate::tub::Tub) to the emulator, which also keeps the watchdog.
//!
//! `SoftTsu` is shared by `&` between the kernels and the emulator; the
//! [`TsuBackend`] impl therefore lives on `&SoftTsu`, mirroring how
//! `&std::fs::File` implements `io::Write`.

use crate::sm::ReadyQueue;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use tflux_core::error::CoreError;
use tflux_core::ids::{BlockId, Epoch, Instance, KernelId};
use tflux_core::policy::{SchedulingPolicy, StealPolicy};
use tflux_core::tsu::{
    FetchResult, FlushPolicy, GraphMemory, ProgramHandle, ShardStats, Steal, SyncMemory,
    TsuBackend, TsuConfig, TsuStats, WaitingInstance,
};

/// The concurrent TSU shared by all TFluxSoft kernels and the emulator.
///
/// Construction arms the first block's inlet on its owning kernel's queue.
/// Every instance is dispatched (marked in-flight in the Synchronization
/// Memory) *before* it is pushed onto a ready queue, so `fetches` and
/// `completions` pair up exactly and stall forensics can name every
/// dispatched-but-unfinished instance.
pub struct SoftTsu<P: ProgramHandle> {
    sm: SyncMemory<P>,
    policy: SchedulingPolicy,
    /// Completion-funnel flush policy the kernels should obey.
    flush: FlushPolicy,
    steal: bool,
    steal_policy: StealPolicy,
    queues: Vec<ReadyQueue>,
    /// Per-kernel steal counters (indexed by kernel id): successful takes
    /// from a sibling queue.
    kernel_steals: Vec<AtomicU64>,
    /// Per-kernel victim probes that found the victim empty.
    kernel_steal_misses: Vec<AtomicU64>,
    /// Per-kernel steal CAS attempts lost to the owner or another thief.
    kernel_steal_races: Vec<AtomicU64>,
    /// Per-kernel victim-draw RNG state (each kernel thread owns its
    /// slot; plain load/store, no RMW needed).
    kernel_rng: Vec<AtomicU64>,
    /// Fetches that found no runnable instance anywhere.
    waits: AtomicU64,
    /// First TSU protocol error raised by a kernel on the direct path; the
    /// emulator collects it and aborts the run.
    protocol: Mutex<Option<CoreError>>,
}

impl<P: ProgramHandle> SoftTsu<P> {
    /// A software TSU for `program` serving `kernels` kernels.
    ///
    /// `GlobalFifo` uses one shared queue; `LocalityFirst` a queue per
    /// kernel (with stealing if configured and there is anyone to steal
    /// from).
    pub fn new(program: P, kernels: u32, config: TsuConfig) -> Self {
        let kernels = kernels.max(1);
        let (nqueues, steal) = match config.policy {
            SchedulingPolicy::GlobalFifo => (1usize, false),
            SchedulingPolicy::LocalityFirst { steal } => (kernels as usize, steal && kernels > 1),
        };
        let sm = SyncMemory::with_window(program, kernels, config.capacity, config.window);
        let flush = config.flush.resolve(sm.graph().program(), kernels);
        // inbox sized at the resident bound (+ slack for the re-armed
        // inlet of the next streaming pass), so the mutex overflow valve
        // behind it is never hit in a correct run
        let qcap = sm.graph().program().max_block_instances() + 2;
        let shared = matches!(config.policy, SchedulingPolicy::GlobalFifo);
        let soft = SoftTsu {
            sm,
            policy: config.policy,
            flush,
            steal,
            steal_policy: config.steal_policy,
            queues: (0..nqueues)
                .map(|_| {
                    if shared {
                        ReadyQueue::new_shared(qcap)
                    } else {
                        ReadyQueue::with_capacity(qcap)
                    }
                })
                .collect(),
            kernel_steals: (0..kernels).map(|_| AtomicU64::new(0)).collect(),
            kernel_steal_misses: (0..kernels).map(|_| AtomicU64::new(0)).collect(),
            kernel_steal_races: (0..kernels).map(|_| AtomicU64::new(0)).collect(),
            kernel_rng: (0..kernels)
                .map(|k| AtomicU64::new(0x5EED_0000 ^ ((k as u64) << 8)))
                .collect(),
            waits: AtomicU64::new(0),
            protocol: Mutex::new(None),
        };
        let inlet = soft.sm.armed_inlet();
        let ep = soft.sm.dispatch(inlet).expect("armed inlet is resident");
        soft.queues[soft.queue_of(inlet)].push(inlet, ep);
        soft
    }

    /// The read-only Graph Memory view.
    pub fn graph(&self) -> GraphMemory<P> {
        self.sm.graph()
    }

    /// Whether idle kernels steal from sibling queues.
    pub fn stealing(&self) -> bool {
        self.steal
    }

    /// The *resolved* completion-funnel flush policy kernels build their
    /// funnels from (`Auto` is resolved against the program at
    /// construction).
    pub fn flush_policy(&self) -> FlushPolicy {
        self.flush
    }

    /// The epoch currently executing.
    pub fn current_epoch(&self) -> Epoch {
        self.sm.current_epoch()
    }

    /// The epoch ledger: `(opened, completed, retired)` pass counts.
    pub fn epoch_ledger(&self) -> (u64, u64, u64) {
        self.sm.epoch_ledger()
    }

    /// Which queue `inst` belongs on (Thread Indexing via Graph Memory).
    fn queue_of(&self, inst: Instance) -> usize {
        match self.policy {
            SchedulingPolicy::GlobalFifo => 0,
            SchedulingPolicy::LocalityFirst { .. } => self
                .sm
                .graph()
                .owner_of(inst)
                .idx()
                .min(self.queues.len() - 1),
        }
    }

    /// The queue index `kernel` pops as its own (its Local TSU).
    pub fn queue_index(&self, kernel: KernelId) -> usize {
        match self.policy {
            SchedulingPolicy::GlobalFifo => 0,
            SchedulingPolicy::LocalityFirst { .. } => kernel.idx().min(self.queues.len() - 1),
        }
    }

    /// Direct access to a ready queue (kernels hold their own for blocking
    /// pops; tests drive inline kernels through it).
    pub fn queue(&self, idx: usize) -> &ReadyQueue {
        &self.queues[idx]
    }

    /// Current depth of every ready queue (stall forensics).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.queues.iter().map(|q| q.len()).collect()
    }

    /// Shut every queue down so all kernels terminate after draining.
    pub fn shutdown(&self) {
        for q in &self.queues {
            q.shutdown();
        }
    }

    /// Whether the last block's outlet has completed.
    pub fn finished(&self) -> bool {
        self.sm.finished()
    }

    /// Completions processed so far — the watchdog's progress probe.
    pub fn completions(&self) -> u64 {
        self.sm.completions()
    }

    /// The currently loaded block, if any.
    pub fn loaded_block(&self) -> Option<BlockId> {
        self.sm.loaded_block()
    }

    /// Post-process a completion and schedule everything it made ready:
    /// each newly-ready instance is dispatched and pushed on its owning
    /// kernel's queue. `scratch` is a reusable buffer (cleared here).
    ///
    /// This is the whole direct-update path: an App completion runs it on
    /// the completing kernel's thread; Inlet/Outlet completions run it on
    /// the emulator thread after a TUB hop.
    pub fn handle_completion(
        &self,
        inst: Instance,
        epoch: Epoch,
        scratch: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        self.sm.complete(inst, epoch, scratch)?;
        for &r in scratch.iter() {
            let ep = self.sm.dispatch(r)?;
            self.queues[self.queue_of(r)].push(r, ep);
        }
        Ok(())
    }

    /// Post-process a funnel flush: a batch of App completions combined
    /// into one ready-count update per consumer slot. Scheduling is
    /// identical to [`handle_completion`](Self::handle_completion) —
    /// every newly-ready instance is dispatched *before* it is pushed.
    pub fn handle_batch(
        &self,
        done: &[Instance],
        epoch: Epoch,
        scratch: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        self.sm.complete_batch(done, epoch, scratch)?;
        for &r in scratch.iter() {
            let ep = self.sm.dispatch(r)?;
            self.queues[self.queue_of(r)].push(r, ep);
        }
        Ok(())
    }

    /// Credit one more streaming pass. If the current pass has already
    /// finished, the graph re-arms now: the resident inlet is dispatched
    /// and pushed on its owning kernel's queue (and reported in
    /// `scratch`), exactly like construction arms the first pass.
    pub fn open_epoch(&self, scratch: &mut Vec<Instance>) -> Result<Epoch, CoreError> {
        let ep = self.sm.open_epoch(scratch)?;
        for &r in scratch.iter() {
            let dep = self.sm.dispatch(r)?;
            self.queues[self.queue_of(r)].push(r, dep);
        }
        Ok(ep)
    }

    /// Return the credit of a completed epoch (oldest-first, exactly
    /// once).
    pub fn retire_epoch(&self, epoch: Epoch) -> Result<(), CoreError> {
        self.sm.retire_epoch(epoch)
    }

    /// Poison the Synchronization Memory: a kernel died mid-completion, so
    /// the ready counts can no longer be trusted. Every subsequent
    /// dispatch/complete/fetch fails with [`CoreError::SmPoisoned`].
    pub fn poison(&self) {
        self.sm.poison();
    }

    /// Non-blocking fetch: own queue first, then (if enabled) a
    /// queue-native steal — one random-victim probe, then a
    /// longest-queue-first rescan. Instances are dispatched when *pushed*
    /// (see [`handle_completion`](Self::handle_completion)), so the only
    /// failure here is a poisoned Synchronization Memory.
    fn try_fetch(&self, kernel: KernelId) -> Result<FetchResult, CoreError> {
        if self.sm.is_poisoned() {
            return Err(CoreError::SmPoisoned);
        }
        let own = self.queue_index(kernel);
        match self.queues[own].try_pop() {
            FetchResult::Wait => {}
            r => return Ok(r),
        }
        if self.steal {
            let k = kernel.idx().min(self.kernel_steals.len() - 1);
            if let Some((i, ep)) = self.steal_for(k, own) {
                return Ok(FetchResult::Thread(i, ep));
            }
        }
        self.waits.fetch_add(1, Ordering::Relaxed);
        Ok(FetchResult::Wait)
    }

    /// One steal pass on behalf of kernel `k` (owner of queue `own`):
    /// probe a random sibling first (spreads concurrent thieves across
    /// victims), then rescan siblings longest-queue-first until every
    /// victim answers [`Steal::Empty`]. Lost CAS races re-scan — the entry
    /// went to someone, so the machine made progress.
    fn steal_for(&self, k: usize, own: usize) -> Option<(Instance, Epoch)> {
        let n = self.queues.len();
        let mut rng = self.kernel_rng[k].load(Ordering::Relaxed);
        let first = self.steal_policy.first_victim(own, n, &mut rng);
        self.kernel_rng[k].store(rng, Ordering::Relaxed);
        if let Some(v) = first {
            match self.queues[v].steal() {
                Steal::Success((i, ep)) => {
                    self.kernel_steals[k].fetch_add(1, Ordering::Relaxed);
                    return Some((i, ep));
                }
                Steal::Empty => {
                    self.kernel_steal_misses[k].fetch_add(1, Ordering::Relaxed);
                }
                Steal::Retry => {
                    self.kernel_steal_races[k].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        loop {
            let victim = (0..n)
                .filter(|&q| q != own && !self.queues[q].is_empty())
                .max_by_key(|&q| self.queues[q].len());
            let Some(v) = victim else { return None };
            match self.queues[v].steal() {
                Steal::Success((i, ep)) => {
                    self.kernel_steals[k].fetch_add(1, Ordering::Relaxed);
                    return Some((i, ep));
                }
                Steal::Empty => {
                    // drained between the length snapshot and the steal —
                    // a clean miss; the rescan drops it from the victims
                    self.kernel_steal_misses[k].fetch_add(1, Ordering::Relaxed);
                }
                Steal::Retry => {
                    self.kernel_steal_races[k].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Instances `kernel` took from sibling queues so far.
    pub fn steals_of(&self, kernel: KernelId) -> u64 {
        self.kernel_steals[kernel.idx().min(self.kernel_steals.len() - 1)].load(Ordering::Relaxed)
    }

    /// Victim probes by `kernel` that found the victim empty.
    pub fn steal_misses_of(&self, kernel: KernelId) -> u64 {
        self.kernel_steal_misses[kernel.idx().min(self.kernel_steal_misses.len() - 1)]
            .load(Ordering::Relaxed)
    }

    /// Steal CAS attempts by `kernel` lost to the owner or another thief.
    pub fn steal_races_of(&self, kernel: KernelId) -> u64 {
        self.kernel_steal_races[kernel.idx().min(self.kernel_steal_races.len() - 1)]
            .load(Ordering::Relaxed)
    }

    /// Record a TSU protocol error raised on a kernel's direct path (first
    /// one wins); the emulator picks it up and aborts the run.
    pub fn record_protocol(&self, e: CoreError) {
        let mut g = self.protocol.lock();
        if g.is_none() {
            *g = Some(e);
        }
    }

    /// Take the recorded protocol error, if any.
    pub fn take_protocol_error(&self) -> Option<CoreError> {
        self.protocol.lock().take()
    }

    /// Aggregate TSU counters, with the scheduler's waits and steals folded
    /// in.
    pub fn stats(&self) -> TsuStats {
        let mut s = self.sm.stats();
        s.waits = self.waits.load(Ordering::Relaxed);
        s.steals = self
            .kernel_steals
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum();
        s.steal_misses = self
            .kernel_steal_misses
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum();
        s.steal_races = self
            .kernel_steal_races
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum();
        s
    }

    /// Per-shard Synchronization Memory counters, indexed by owning kernel.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.sm.shard_stats()
    }

    /// Stall forensics: resident instances still waiting on producers.
    pub fn waiting_instances(&self) -> Vec<WaitingInstance> {
        self.sm.waiting_instances()
    }

    /// Stall forensics: instances dispatched but never completed.
    pub fn running_instances(&self) -> Vec<Instance> {
        self.sm.running_instances()
    }
}

impl<P: ProgramHandle> TsuBackend for &SoftTsu<P> {
    fn load_block(&mut self, block: BlockId, ready: &mut Vec<Instance>) -> Result<(), CoreError> {
        ready.clear();
        self.sm.load_block(block, ready)?;
        for &r in ready.iter() {
            let ep = self.sm.dispatch(r)?;
            self.queues[self.queue_of(r)].push(r, ep);
        }
        Ok(())
    }

    fn fetch(&mut self, kernel: KernelId) -> Result<FetchResult, CoreError> {
        self.try_fetch(kernel)
    }

    fn complete(
        &mut self,
        inst: Instance,
        epoch: Epoch,
        ready: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        self.handle_completion(inst, epoch, ready)
    }

    fn complete_batch(
        &mut self,
        done: &[Instance],
        epoch: Epoch,
        ready: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        self.handle_batch(done, epoch, ready)
    }

    fn open_epoch(&mut self, ready: &mut Vec<Instance>) -> Result<Epoch, CoreError> {
        SoftTsu::open_epoch(self, ready)
    }

    fn retire_epoch(&mut self, epoch: Epoch) -> Result<(), CoreError> {
        SoftTsu::retire_epoch(self, epoch)
    }

    fn drain_stats(&mut self) -> TsuStats {
        self.stats()
    }

    fn waiting_instances(&self) -> Vec<WaitingInstance> {
        (**self).waiting_instances()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tflux_core::prelude::*;

    fn fork_join(arity: u32) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(blk, ThreadSpec::scalar("src"));
        let work = b.thread(blk, ThreadSpec::new("work", arity));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(src, work, ArcMapping::Broadcast).unwrap();
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn single_owner_drains_whole_program_via_backend() {
        let p = fork_join(4);
        let soft = SoftTsu::new(&p, 2, TsuConfig::default());
        let mut backend = &soft;
        let mut scratch = Vec::new();
        let mut done = 0usize;
        // round-robin both kernels through the trait
        while !soft.finished() {
            let mut idle = true;
            for k in 0..2 {
                if let FetchResult::Thread(i, ep) = backend.fetch(KernelId(k)).unwrap() {
                    backend.complete(i, ep, &mut scratch).unwrap();
                    done += 1;
                    idle = false;
                }
            }
            assert!(!idle, "no kernel can make progress");
        }
        assert_eq!(done, p.total_instances());
        let s = soft.stats();
        assert_eq!(s.completions as usize, p.total_instances());
        assert_eq!(s.fetches, s.completions);
        assert_eq!(
            s.rc_updates,
            soft.shard_stats().iter().map(|s| s.rc_updates).sum::<u64>()
        );
    }

    #[test]
    fn armed_inlet_is_dispatched_and_queued() {
        let p = fork_join(2);
        let soft = SoftTsu::new(&p, 1, TsuConfig::default());
        assert_eq!(soft.queue_depths(), vec![1]);
        // already in flight before any kernel pops it — this is what lets
        // the watchdog name a never-popped inlet in its forensics
        assert_eq!(soft.running_instances(), vec![soft.graph().first_inlet()]);
    }

    #[test]
    fn protocol_error_is_latched_once() {
        let p = fork_join(2);
        let soft = SoftTsu::new(&p, 1, TsuConfig::default());
        soft.record_protocol(CoreError::NotRunning(Instance::new(
            ThreadId(1),
            Context(0),
        )));
        soft.record_protocol(CoreError::NotRunning(Instance::new(
            ThreadId(2),
            Context(9),
        )));
        match soft.take_protocol_error() {
            Some(CoreError::NotRunning(i)) => assert_eq!(i.thread, ThreadId(1)),
            other => panic!("{other:?}"),
        }
        assert!(soft.take_protocol_error().is_none());
    }

    #[test]
    fn steals_are_counted_per_kernel() {
        // all work pinned to kernel 1; kernel 0 steals it
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let w = b.thread(
            blk,
            ThreadSpec::new("w", 4).with_affinity(Affinity::Fixed(KernelId(1))),
        );
        let _ = w;
        let p = b.build().unwrap();
        let soft = SoftTsu::new(
            &p,
            2,
            TsuConfig {
                capacity: 0,
                policy: SchedulingPolicy::LocalityFirst { steal: true },
                ..Default::default()
            },
        );
        let mut backend = &soft;
        let mut scratch = Vec::new();
        let mut done = 0usize;
        while !soft.finished() {
            match backend.fetch(KernelId(0)).unwrap() {
                FetchResult::Thread(i, ep) => {
                    backend.complete(i, ep, &mut scratch).unwrap();
                    done += 1;
                }
                other => panic!("kernel 0 should always find work: {other:?}"),
            }
        }
        assert_eq!(done, p.total_instances());
        assert_eq!(soft.steals_of(KernelId(0)), 4, "the 4 pinned instances");
        assert_eq!(soft.steals_of(KernelId(1)), 0);
        assert_eq!(soft.stats().steals, 4);
    }

    #[test]
    fn poisoned_sm_fails_fetch_and_completion() {
        let p = fork_join(2);
        let soft = SoftTsu::new(&p, 1, TsuConfig::default());
        soft.poison();
        let mut backend = &soft;
        assert_eq!(backend.fetch(KernelId(0)), Err(CoreError::SmPoisoned));
        let mut scratch = Vec::new();
        assert_eq!(
            soft.handle_completion(soft.graph().first_inlet(), Epoch(0), &mut scratch),
            Err(CoreError::SmPoisoned)
        );
    }

    #[test]
    fn global_fifo_uses_one_queue_for_all_kernels() {
        let p = fork_join(3);
        let soft = SoftTsu::new(
            &p,
            4,
            TsuConfig {
                capacity: 0,
                policy: SchedulingPolicy::GlobalFifo,
                ..Default::default()
            },
        );
        assert_eq!(soft.queue_depths().len(), 1);
        assert_eq!(soft.queue_index(KernelId(3)), 0);
        assert!(!soft.stealing());
    }
}
