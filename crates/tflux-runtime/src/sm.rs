//! Per-kernel ready queues — the runtime face of the TSU Queue Units.
//!
//! Each kernel owns one [`ReadyQueue`] ("Local TSU" in Fig. 4 of the paper):
//! the concurrent counterpart of the single-owner
//! [`QueueUnit`](tflux_core::tsu::QueueUnit). Completion handlers push
//! instances whose ready count reached zero; the kernel pops them, blocking
//! when empty. Shutdown is broadcast once the last block's outlet
//! completes. All three answers speak the shared
//! [`FetchResult`] vocabulary — the enum that
//! used to exist twice, as core's `FetchResult` and the runtime's `Fetched`.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tflux_core::ids::{Epoch, Instance};
use tflux_core::tsu::FetchResult;

struct Inner {
    queue: VecDeque<(Instance, Epoch)>,
    exit: bool,
}

/// A blocking MPSC ready queue for one kernel.
pub struct ReadyQueue {
    inner: Mutex<Inner>,
    available: Condvar,
    /// Time the kernel spent blocked on an empty queue, in nanoseconds.
    wait_ns: AtomicU64,
    /// Number of pops that had to block.
    blocked_pops: AtomicU64,
}

impl Default for ReadyQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadyQueue {
    /// An empty queue.
    pub fn new() -> Self {
        ReadyQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                exit: false,
            }),
            available: Condvar::new(),
            wait_ns: AtomicU64::new(0),
            blocked_pops: AtomicU64::new(0),
        }
    }

    /// Enqueue a ready instance with the epoch it was dispatched under
    /// (completion-handler side).
    pub fn push(&self, inst: Instance, epoch: Epoch) {
        let mut inner = self.inner.lock();
        inner.queue.push_back((inst, epoch));
        self.available.notify_one();
    }

    /// Tell the kernel to exit once the queue drains.
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock();
        inner.exit = true;
        self.available.notify_all();
    }

    /// Dequeue the next instance, blocking while the queue is empty and the
    /// program is still running — never returns [`FetchResult::Wait`]. Exit
    /// is reported only after the queue is empty, so no ready instance is
    /// ever abandoned.
    pub fn pop(&self) -> FetchResult {
        let mut inner = self.inner.lock();
        loop {
            if let Some((i, ep)) = inner.queue.pop_front() {
                return FetchResult::Thread(i, ep);
            }
            if inner.exit {
                return FetchResult::Exit;
            }
            self.blocked_pops.fetch_add(1, Ordering::Relaxed);
            let start = std::time::Instant::now();
            // Timed wait so a lost notification can never hang a kernel.
            self.available
                .wait_for(&mut inner, Duration::from_millis(50));
            self.wait_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Pop with a bounded wait: returns [`FetchResult::Wait`] when
    /// `timeout` elapses with the queue still empty and the program still
    /// running. Used by the work-stealing kernel loop, which must
    /// periodically rescan victim queues instead of blocking on its own
    /// queue forever.
    pub fn pop_timeout(&self, timeout: Duration) -> FetchResult {
        let mut inner = self.inner.lock();
        if let Some((i, ep)) = inner.queue.pop_front() {
            return FetchResult::Thread(i, ep);
        }
        if inner.exit {
            return FetchResult::Exit;
        }
        self.blocked_pops.fetch_add(1, Ordering::Relaxed);
        let start = std::time::Instant::now();
        self.available.wait_for(&mut inner, timeout);
        self.wait_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if let Some((i, ep)) = inner.queue.pop_front() {
            FetchResult::Thread(i, ep)
        } else if inner.exit {
            FetchResult::Exit
        } else {
            FetchResult::Wait
        }
    }

    /// Non-blocking pop: [`FetchResult::Wait`] when the queue is empty and
    /// the program is still running.
    pub fn try_pop(&self) -> FetchResult {
        let mut inner = self.inner.lock();
        if let Some((i, ep)) = inner.queue.pop_front() {
            FetchResult::Thread(i, ep)
        } else if inner.exit {
            FetchResult::Exit
        } else {
            FetchResult::Wait
        }
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Nanoseconds this kernel spent blocked waiting for work.
    pub fn wait_nanos(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }

    /// Number of pops that found the queue empty and blocked.
    pub fn blocked_pops(&self) -> u64 {
        self.blocked_pops.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tflux_core::ids::{Context, ThreadId};

    fn inst(t: u32) -> Instance {
        Instance::new(ThreadId(t), Context(0))
    }

    const E0: Epoch = Epoch(0);

    #[test]
    fn fifo_order() {
        let q = ReadyQueue::new();
        q.push(inst(1), E0);
        q.push(inst(2), E0);
        assert_eq!(q.pop(), FetchResult::Thread(inst(1), E0));
        assert_eq!(q.pop(), FetchResult::Thread(inst(2), E0));
    }

    #[test]
    fn exit_reported_only_after_drain() {
        let q = ReadyQueue::new();
        q.push(inst(1), E0);
        q.shutdown();
        assert_eq!(q.pop(), FetchResult::Thread(inst(1), E0));
        assert_eq!(q.pop(), FetchResult::Exit);
        assert_eq!(q.pop(), FetchResult::Exit);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(ReadyQueue::new());
        let handle = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.push(inst(7), E0);
        assert_eq!(handle.join().unwrap(), FetchResult::Thread(inst(7), E0));
        assert!(q.blocked_pops() >= 1);
    }

    #[test]
    fn blocking_pop_wakes_on_shutdown() {
        let q = Arc::new(ReadyQueue::new());
        let handle = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(10));
        q.shutdown();
        assert_eq!(handle.join().unwrap(), FetchResult::Exit);
    }

    #[test]
    fn pop_timeout_expires_and_delivers() {
        let q = ReadyQueue::new();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), FetchResult::Wait);
        q.push(inst(4), E0);
        assert_eq!(
            q.pop_timeout(Duration::from_millis(5)),
            FetchResult::Thread(inst(4), E0)
        );
        q.shutdown();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), FetchResult::Exit);
    }

    #[test]
    fn try_pop_states() {
        let q = ReadyQueue::new();
        assert_eq!(q.try_pop(), FetchResult::Wait);
        q.push(inst(3), E0);
        assert_eq!(q.try_pop(), FetchResult::Thread(inst(3), E0));
        q.shutdown();
        assert_eq!(q.try_pop(), FetchResult::Exit);
    }
}
