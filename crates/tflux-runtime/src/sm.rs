//! Per-kernel ready queues — the runtime face of the TSU Queue Units.
//!
//! Each kernel owns one [`ReadyQueue`] ("Local TSU" in Fig. 4 of the
//! paper): the concurrent counterpart of the single-owner
//! [`StealDeque`](tflux_core::tsu::StealDeque) — in fact it is built *on*
//! one. Completion handlers push instances whose ready count reached zero;
//! the kernel pops them, blocking when empty; idle siblings steal. All
//! three answers speak the shared [`FetchResult`] vocabulary.
//!
//! # Structure
//!
//! The push/pop fast path takes **no mutex**:
//!
//! * a [`StealDeque`] the owner works LIFO at the bottom of, thieves CAS
//!   the top of;
//! * an [`MpmcRing`] *inbox* that receives every push — pushes come from
//!   whichever kernel ran the producer, and Chase-Lev bottoms are
//!   owner-only. The owner drains the inbox into its deque before
//!   popping; thieves may pop the inbox directly, so work pushed at a
//!   kernel that never fetches is still stealable;
//! * a `Mutex<VecDeque>` *overflow valve* behind an atomic length that is
//!   only touched when the inbox is full — sized right it is never hit,
//!   but no push is ever lost or spun on;
//! * a parker: `Mutex<()>` + `Condvar`, demoted to the slow path. A
//!   consumer that misses registers itself in `parked` (SeqCst), re-checks
//!   the queues, and only then waits; a pusher publishes its entry, runs a
//!   `SeqCst` fence and reads `parked` — the Dekker handshake means either
//!   the pusher observes the parker (and notifies under the park lock) or
//!   the parker's re-check observes the entry. A 50 ms timed wait backstops
//!   lost wakeups, exactly as before.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use tflux_core::ids::{Epoch, Instance};
use tflux_core::tsu::{FetchResult, MpmcRing, Steal, StealDeque};

/// How long a blocked pop sleeps before re-checking on its own — the
/// backstop against a lost wakeup, not the normal wake path.
const PARK_BACKSTOP: Duration = Duration::from_millis(50);

/// A blocking MPMC ready queue for one kernel, with a lock-free fast path
/// and queue-native stealing.
pub struct ReadyQueue {
    /// Owner-side deque: LIFO for the owner, FIFO for thieves.
    deque: StealDeque,
    /// All pushes land here (pushers are foreign threads); drained into
    /// `deque` by the owner, poppable by thieves.
    inbox: MpmcRing,
    /// Valve for pushes that find the inbox full. `overflow_len` gates it
    /// so nobody locks the mutex while it is empty — the common case.
    overflow: Mutex<VecDeque<(Instance, Epoch)>>,
    overflow_len: AtomicUsize,
    /// Multi-consumer mode (the `GlobalFifo` baseline): several kernels
    /// pop one queue, so the owner-only deque bottom is off limits and
    /// every take goes through the MPMC inbox — preserving FIFO order.
    shared: bool,
    exit: AtomicBool,
    /// Consumers currently inside the park protocol.
    parked: AtomicUsize,
    park_lock: Mutex<()>,
    available: Condvar,
    /// Time consumers spent blocked on an empty queue, in nanoseconds.
    wait_ns: AtomicU64,
    /// Number of pop calls that had to block at least once.
    blocked_pops: AtomicU64,
}

impl Default for ReadyQueue {
    fn default() -> Self {
        Self::new()
    }
}

enum WaitMode {
    /// Return `Wait` immediately on a miss.
    Now,
    /// Block until work, exit, or the deadline (`None` = forever).
    Until(Option<Instant>),
}

impl ReadyQueue {
    /// An empty single-owner queue with a default-sized inbox.
    pub fn new() -> Self {
        Self::build(256, false)
    }

    /// An empty single-owner queue whose inbox holds `cap` entries before
    /// the overflow valve engages. Size it at the program's resident bound
    /// and the valve is never hit.
    pub fn with_capacity(cap: usize) -> Self {
        Self::build(cap, false)
    }

    /// An empty *shared* (multi-consumer) queue: every take is served
    /// FIFO from the MPMC inbox, because the deque bottom is owner-only.
    pub fn new_shared(cap: usize) -> Self {
        Self::build(cap, true)
    }

    fn build(cap: usize, shared: bool) -> Self {
        ReadyQueue {
            deque: StealDeque::with_capacity(cap.max(4)),
            inbox: MpmcRing::with_capacity(cap.max(4)),
            overflow: Mutex::new(VecDeque::new()),
            overflow_len: AtomicUsize::new(0),
            shared,
            exit: AtomicBool::new(false),
            parked: AtomicUsize::new(0),
            park_lock: Mutex::new(()),
            available: Condvar::new(),
            wait_ns: AtomicU64::new(0),
            blocked_pops: AtomicU64::new(0),
        }
    }

    /// Enqueue a ready instance with the epoch it was dispatched under
    /// (completion-handler side; any thread). Lock-free unless the inbox
    /// is full or a consumer is parked.
    pub fn push(&self, inst: Instance, epoch: Epoch) {
        if !self.inbox.push(inst, epoch) {
            let mut ovf = self.overflow.lock();
            ovf.push_back((inst, epoch));
            self.overflow_len.store(ovf.len(), Ordering::SeqCst);
        }
        self.wake();
    }

    /// Tell consumers to exit once the queue drains.
    pub fn shutdown(&self) {
        self.exit.store(true, Ordering::SeqCst);
        self.wake();
    }

    /// The pusher half of the Dekker handshake: entry already published,
    /// notify iff somebody is (or is about to be) parked.
    fn wake(&self) {
        fence(Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) > 0 {
            // taking the lock orders the notify after the parker's
            // registered-but-not-yet-waiting window closes
            let _guard = self.park_lock.lock();
            self.available.notify_all();
        }
    }

    fn pop_overflow(&self) -> Option<(Instance, Epoch)> {
        if self.overflow_len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let mut ovf = self.overflow.lock();
        let e = ovf.pop_front();
        self.overflow_len.store(ovf.len(), Ordering::SeqCst);
        e
    }

    /// One take attempt by this queue's consumer. Owner mode drains the
    /// inbox into the deque and pops LIFO; shared mode serves FIFO
    /// straight from the inbox.
    fn take(&self) -> Option<(Instance, Epoch)> {
        if self.shared {
            return self.inbox.pop().or_else(|| self.pop_overflow());
        }
        while let Some((i, ep)) = self.inbox.pop() {
            self.deque.push(i, ep);
        }
        self.deque.pop().or_else(|| self.pop_overflow())
    }

    /// One steal attempt by a foreign kernel: the deque top first (oldest
    /// owner-side entry), then the inbox, then the overflow valve.
    /// [`Steal::Retry`] means a CAS was lost to the owner or another
    /// thief — the caller counts the race and may retry or move on.
    pub fn steal(&self) -> Steal {
        match self.deque.steal() {
            Steal::Empty => {}
            hit_or_race => return hit_or_race,
        }
        if let Some(e) = self.inbox.pop() {
            return Steal::Success(e);
        }
        match self.pop_overflow() {
            Some(e) => Steal::Success(e),
            None => Steal::Empty,
        }
    }

    /// Whether every constituent queue is (momentarily) empty.
    fn looks_empty(&self) -> bool {
        self.deque.is_empty()
            && self.inbox.is_empty()
            && self.overflow_len.load(Ordering::SeqCst) == 0
    }

    /// The one wait loop behind [`pop`](Self::pop),
    /// [`pop_timeout`](Self::pop_timeout) and [`try_pop`](Self::try_pop),
    /// so the `wait_nanos`/`blocked_pops` accounting cannot drift between
    /// the three entry points.
    fn pop_inner(&self, mode: WaitMode) -> FetchResult {
        let mut counted = false;
        loop {
            // read exit *before* taking: if the flag is up, anything
            // pushed before shutdown is already visible, so a miss after
            // a true flag really means drained
            let exiting = self.exit.load(Ordering::SeqCst);
            if let Some((i, ep)) = self.take() {
                return FetchResult::Thread(i, ep);
            }
            if exiting {
                return FetchResult::Exit;
            }
            let deadline = match mode {
                WaitMode::Now => return FetchResult::Wait,
                WaitMode::Until(d) => d,
            };
            let now = Instant::now();
            let wait_for = match deadline {
                Some(d) => match d.checked_duration_since(now) {
                    Some(left) => left.min(PARK_BACKSTOP),
                    None => return FetchResult::Wait,
                },
                None => PARK_BACKSTOP,
            };
            if !counted {
                counted = true;
                self.blocked_pops.fetch_add(1, Ordering::Relaxed);
            }
            // park: register, re-check, then wait (the parker half of the
            // Dekker handshake — see `wake`)
            let mut guard = self.park_lock.lock();
            self.parked.fetch_add(1, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if self.looks_empty() && !self.exit.load(Ordering::SeqCst) {
                self.available.wait_for(&mut guard, wait_for);
            }
            self.parked.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
            self.wait_ns
                .fetch_add(now.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Dequeue the next instance, blocking while the queue is empty and the
    /// program is still running — never returns [`FetchResult::Wait`]. Exit
    /// is reported only after the queue is empty, so no ready instance is
    /// ever abandoned.
    pub fn pop(&self) -> FetchResult {
        self.pop_inner(WaitMode::Until(None))
    }

    /// Pop with a bounded wait: returns [`FetchResult::Wait`] when
    /// `timeout` elapses with the queue still empty and the program still
    /// running. Used by the work-stealing kernel loop, which must
    /// periodically rescan victim queues instead of blocking on its own
    /// queue forever.
    pub fn pop_timeout(&self, timeout: Duration) -> FetchResult {
        self.pop_inner(WaitMode::Until(Instant::now().checked_add(timeout)))
    }

    /// Non-blocking pop: [`FetchResult::Wait`] when the queue is empty and
    /// the program is still running.
    pub fn try_pop(&self) -> FetchResult {
        self.pop_inner(WaitMode::Now)
    }

    /// Entries currently queued (a racy snapshot under concurrency).
    pub fn len(&self) -> usize {
        self.deque.len() + self.inbox.len() + self.overflow_len.load(Ordering::SeqCst)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Nanoseconds consumers spent blocked waiting for work.
    pub fn wait_nanos(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }

    /// Number of pop calls that found the queue empty and blocked (each
    /// blocking call counts once, however many times it re-checks).
    pub fn blocked_pops(&self) -> u64 {
        self.blocked_pops.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tflux_core::ids::{Context, ThreadId};

    fn inst(t: u32) -> Instance {
        Instance::new(ThreadId(t), Context(0))
    }

    const E0: Epoch = Epoch(0);

    #[test]
    fn owner_pops_lifo_thieves_steal_fifo() {
        // the Chase-Lev contract replaces the old FIFO-for-everyone order:
        // the owner runs its newest (cache-warm) entry, a thief migrates
        // the oldest
        let q = ReadyQueue::new();
        q.push(inst(1), E0);
        q.push(inst(2), E0);
        q.push(inst(3), E0);
        assert_eq!(q.steal(), Steal::Success((inst(1), E0)));
        assert_eq!(q.pop(), FetchResult::Thread(inst(3), E0));
        assert_eq!(q.pop(), FetchResult::Thread(inst(2), E0));
        assert_eq!(q.steal(), Steal::Empty);
        assert_eq!(q.try_pop(), FetchResult::Wait);
    }

    #[test]
    fn shared_queue_serves_fifo() {
        // GlobalFifo baseline: multi-consumer queues keep strict FIFO
        let q = ReadyQueue::new_shared(8);
        q.push(inst(1), E0);
        q.push(inst(2), Epoch(3));
        q.push(inst(3), E0);
        assert_eq!(q.pop(), FetchResult::Thread(inst(1), E0));
        assert_eq!(q.pop(), FetchResult::Thread(inst(2), Epoch(3)));
        assert_eq!(q.steal(), Steal::Success((inst(3), E0)));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_valve_loses_nothing() {
        // an undersized inbox pushes the excess through the mutex valve;
        // every entry still comes out, and len() sees all of them
        let q = ReadyQueue::with_capacity(4);
        for t in 0..20 {
            q.push(inst(t), E0);
        }
        assert_eq!(q.len(), 20);
        let mut got = Vec::new();
        loop {
            match q.try_pop() {
                FetchResult::Thread(i, _) => got.push(i.thread.0),
                FetchResult::Wait => break,
                FetchResult::Exit => unreachable!(),
            }
            // interleave thief traffic through the same valve
            if let Steal::Success((i, _)) = q.steal() {
                got.push(i.thread.0);
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn exit_reported_only_after_drain() {
        let q = ReadyQueue::new();
        q.push(inst(1), E0);
        q.shutdown();
        assert_eq!(q.pop(), FetchResult::Thread(inst(1), E0));
        assert_eq!(q.pop(), FetchResult::Exit);
        assert_eq!(q.pop(), FetchResult::Exit);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(ReadyQueue::new());
        let handle = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.push(inst(7), E0);
        assert_eq!(handle.join().unwrap(), FetchResult::Thread(inst(7), E0));
        assert!(q.blocked_pops() >= 1);
        assert!(q.wait_nanos() > 0);
    }

    #[test]
    fn blocking_pop_wakes_on_shutdown() {
        let q = Arc::new(ReadyQueue::new());
        let handle = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(10));
        q.shutdown();
        assert_eq!(handle.join().unwrap(), FetchResult::Exit);
    }

    #[test]
    fn pop_timeout_expires_and_delivers() {
        let q = ReadyQueue::new();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), FetchResult::Wait);
        q.push(inst(4), E0);
        assert_eq!(
            q.pop_timeout(Duration::from_millis(5)),
            FetchResult::Thread(inst(4), E0)
        );
        q.shutdown();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), FetchResult::Exit);
    }

    #[test]
    fn try_pop_states() {
        let q = ReadyQueue::new();
        assert_eq!(q.try_pop(), FetchResult::Wait);
        q.push(inst(3), E0);
        assert_eq!(q.try_pop(), FetchResult::Thread(inst(3), E0));
        q.shutdown();
        assert_eq!(q.try_pop(), FetchResult::Exit);
        // a blocked-pop counter is only charged by calls that block
        assert_eq!(q.blocked_pops(), 0);
    }

    #[test]
    fn racing_thieves_and_owner_drain_exactly_once() {
        // two foreign kernels steal while the owner pushes and pops;
        // every entry is claimed exactly once across the three parties
        let n = 5_000u32;
        let q = Arc::new(ReadyQueue::with_capacity(8));
        let done = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                loop {
                    match q.steal() {
                        Steal::Success((i, _)) => mine.push(i.context.0),
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(Ordering::SeqCst) && q.steal() == Steal::Empty {
                                break;
                            }
                        }
                    }
                }
                mine
            }));
        }
        let mut mine = Vec::new();
        for c in 0..n {
            q.push(Instance::new(ThreadId(1), Context(c)), E0);
            if c % 2 == 0 {
                if let FetchResult::Thread(i, _) = q.try_pop() {
                    mine.push(i.context.0);
                }
            }
        }
        while let FetchResult::Thread(i, _) = q.try_pop() {
            mine.push(i.context.0);
        }
        done.store(true, Ordering::SeqCst);
        for h in handles {
            mine.extend(h.join().unwrap());
        }
        mine.sort_unstable();
        mine.dedup();
        assert_eq!(mine.len(), n as usize, "lost or duplicated entries");
    }
}
