//! Shared variables for producer→consumer data transfer between DThreads.
//!
//! In the DDM model the synchronization graph already guarantees that a
//! consumer only runs after its producers completed, so data handed through
//! a [`SharedVar`] never races: the producer instance writes its slot once,
//! and consumers read it afterwards. This is the shared-memory analogue of
//! TFluxCell's `SharedVariableBuffer` (§4.3) and the "shared variables used
//! in the producer-consumer relationships" of §3.1.

use std::sync::OnceLock;
use tflux_core::ids::Context;

/// A write-once-per-slot variable shared between DThreads.
///
/// One slot per producer context. Writing a slot twice panics — that is
/// always a program bug (two producers mapped onto the same slot, or a
/// producer that ran twice, which the TSU excludes).
pub struct SharedVar<T> {
    slots: Vec<OnceLock<T>>,
}

impl<T> SharedVar<T> {
    /// A variable with `arity` slots (one per producer context).
    pub fn new(arity: u32) -> Self {
        SharedVar {
            slots: (0..arity).map(|_| OnceLock::new()).collect(),
        }
    }

    /// A single-slot variable (scalar producer).
    pub fn scalar() -> Self {
        SharedVar::new(1)
    }

    /// Number of slots.
    pub fn arity(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Publish the value produced by context `ctx`.
    ///
    /// # Panics
    /// If the slot was already written or `ctx` is out of range.
    pub fn put(&self, ctx: Context, value: T) {
        if self.slots[ctx.idx()].set(value).is_err() {
            panic!("SharedVar slot {ctx:?} written twice");
        }
    }

    /// Read the value produced by context `ctx`.
    ///
    /// # Panics
    /// If the producer has not written the slot — with a correct
    /// synchronization graph this cannot happen, so a panic here means the
    /// graph is missing an arc.
    pub fn get(&self, ctx: Context) -> &T {
        self.slots[ctx.idx()]
            .get()
            .unwrap_or_else(|| panic!("SharedVar slot {ctx:?} read before being produced"))
    }

    /// Read a slot that may not have been produced.
    pub fn get_opt(&self, ctx: Context) -> Option<&T> {
        self.slots[ctx.idx()].get()
    }

    /// The scalar slot (context 0).
    pub fn value(&self) -> &T {
        self.get(Context(0))
    }

    /// Iterate over all produced values in context order.
    ///
    /// Skips unproduced slots; with a complete graph this yields every slot.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.get())
    }

    /// Consume the variable, returning produced values in context order.
    pub fn into_values(self) -> Vec<Option<T>> {
        self.slots.into_iter().map(|s| s.into_inner()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_roundtrip() {
        let v = SharedVar::<u32>::new(3);
        v.put(Context(1), 42);
        assert_eq!(*v.get(Context(1)), 42);
        assert_eq!(v.get_opt(Context(0)), None);
        assert_eq!(v.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn double_put_panics() {
        let v = SharedVar::<u32>::scalar();
        v.put(Context(0), 1);
        v.put(Context(0), 2);
    }

    #[test]
    #[should_panic(expected = "read before being produced")]
    fn premature_get_panics() {
        let v = SharedVar::<u32>::scalar();
        let _ = v.value();
    }

    #[test]
    fn iter_yields_in_context_order() {
        let v = SharedVar::<u32>::new(4);
        v.put(Context(2), 2);
        v.put(Context(0), 0);
        v.put(Context(3), 3);
        let got: Vec<u32> = v.iter().copied().collect();
        assert_eq!(got, vec![0, 2, 3]);
    }

    #[test]
    fn concurrent_disjoint_puts() {
        let v = Arc::new(SharedVar::<u64>::new(64));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let v = Arc::clone(&v);
                s.spawn(move || {
                    for c in (t..64).step_by(4) {
                        v.put(Context(c), c as u64 * 10);
                    }
                });
            }
        });
        for c in 0..64 {
            assert_eq!(*v.get(Context(c)), c as u64 * 10);
        }
    }

    #[test]
    fn into_values_preserves_holes() {
        let v = SharedVar::<u8>::new(3);
        v.put(Context(1), 9);
        assert_eq!(v.into_values(), vec![None, Some(9), None]);
    }
}
