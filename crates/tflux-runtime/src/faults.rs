//! Deterministic fault injection for the TFluxSoft runtime.
//!
//! The paper's claim is that DDM scheduling runs reliably on a purely
//! software TSU (§4.2). To test that claim under adverse timing — not just
//! on the happy path — the runtime threads a [`FaultInjector`] through the
//! kernel loop, the TUB and the TSU Emulator at *named sites*:
//!
//! | site | where | effect |
//! |---|---|---|
//! | body panic   | kernel, before a DThread body | the body panics instead of running |
//! | body delay   | kernel, before a DThread body | the body is delayed |
//! | kernel stall | kernel, top of the fetch loop | the kernel sleeps (descheduled CPU) |
//! | TUB publish delay | [`Tub::push_with`](crate::tub::Tub::push_with) | the completion is published late |
//! | dropped bell | after a TUB publish | the emulator's condvar is *not* signalled |
//! | drain jitter | emulator, before each TUB drain | the post-processing phase runs late |
//!
//! Everything is driven by a [`FaultPlan`]: a *seeded, deterministic*
//! schedule with no ambient randomness. Every decision is a pure function
//! of `(seed, site, arguments)` — rerunning the same plan against the same
//! program makes the same per-instance decisions, the discipline
//! deterministic simulators (MGSim-style) bring applied to a threaded
//! runtime. The default injector, [`NoFaults`], is a zero-sized type whose
//! methods are inlined constants; code monomorphized over it compiles to
//! the unfaulted hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tflux_core::ids::{Instance, KernelId};

/// What the injector tells a kernel to do before it runs a DThread body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BodyFault {
    /// Run the body normally.
    Pass,
    /// Sleep for the given duration, then run the body.
    Delay(Duration),
    /// Panic instead of running the body (the kernel's containment,
    /// retry and poisoning machinery treat it exactly like a body panic).
    Panic,
}

/// A source of injected faults, consulted at each named site.
///
/// All methods have no-op defaults, so an injector only overrides the sites
/// it cares about. Implementations must be [`Sync`]: one injector is shared
/// by every kernel thread and the emulator. The runtime is monomorphized
/// over the injector type, so the [`NoFaults`] default adds no overhead.
pub trait FaultInjector: Sync {
    /// Site *body panic* / *body delay*: consulted by a kernel right before
    /// dispatching `instance`'s body. `attempt` is 1-based and increments
    /// across [`RetryPolicy`](crate::RetryPolicy) re-dispatches, so a plan
    /// can make an instance fail its first attempts and then recover.
    #[inline]
    fn before_body(&self, _kernel: KernelId, _instance: Instance, _attempt: u32) -> BodyFault {
        BodyFault::Pass
    }

    /// Site *kernel stall*: consulted at the top of the kernel fetch loop;
    /// `iteration` counts this kernel's loop iterations. Returning a
    /// duration deschedules the kernel for that long.
    #[inline]
    fn kernel_stall(&self, _kernel: KernelId, _iteration: u64) -> Option<Duration> {
        None
    }

    /// Site *TUB publish delay*: consulted before a completion is published
    /// into the TUB. Returning a duration delays the publish.
    #[inline]
    fn tub_publish_delay(&self, _instance: Instance) -> Option<Duration> {
        None
    }

    /// Site *dropped bell*: consulted after a completion lands in a TUB
    /// segment. Returning `true` suppresses the emulator wakeup signal —
    /// the classic lost-wakeup failure mode. (The emulator's timed wait
    /// must recover; the chaos suite verifies it does.)
    #[inline]
    fn drop_bell(&self, _instance: Instance) -> bool {
        false
    }

    /// Site *drain jitter*: consulted by the emulator before each TUB
    /// drain; `round` counts emulator loop iterations. Returning a duration
    /// delays the post-processing phase.
    #[inline]
    fn drain_jitter(&self, _round: u64) -> Option<Duration> {
        None
    }
}

/// The zero-cost default injector: never injects anything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// splitmix64 finalizer — the deterministic mixing function behind every
/// [`FaultPlan`] decision (and the TUB backoff jitter).
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Site tags keep decisions at different sites independent for one seed.
const SITE_BODY_PANIC: u64 = 0x9147_11FB_6C8F_0001;
const SITE_BODY_DELAY: u64 = 0x9147_11FB_6C8F_0002;
const SITE_KERNEL_STALL: u64 = 0x9147_11FB_6C8F_0003;
const SITE_TUB_DELAY: u64 = 0x9147_11FB_6C8F_0004;
const SITE_DROPPED_BELL: u64 = 0x9147_11FB_6C8F_0005;
const SITE_DRAIN_JITTER: u64 = 0x9147_11FB_6C8F_0006;

#[inline]
fn instance_key(i: Instance) -> u64 {
    ((i.thread.0 as u64) << 32) | i.context.0 as u64
}

/// Counts of faults a plan actually injected, per site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Bodies made to panic.
    pub body_panics: u64,
    /// Bodies delayed.
    pub body_delays: u64,
    /// Kernel fetch-loop stalls.
    pub kernel_stalls: u64,
    /// TUB publishes delayed.
    pub tub_delays: u64,
    /// Emulator wakeup signals suppressed.
    pub dropped_bells: u64,
    /// Emulator drains delayed.
    pub drain_jitters: u64,
}

impl FaultCounts {
    /// Total faults injected across all sites.
    pub fn total(&self) -> u64 {
        self.body_panics
            + self.body_delays
            + self.kernel_stalls
            + self.tub_delays
            + self.dropped_bells
            + self.drain_jitters
    }
}

#[derive(Debug, Default)]
struct Counters {
    body_panics: AtomicU64,
    body_delays: AtomicU64,
    kernel_stalls: AtomicU64,
    tub_delays: AtomicU64,
    dropped_bells: AtomicU64,
    drain_jitters: AtomicU64,
}

/// One probabilistic fault arm: fires with probability `per_mille`/1000.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Arm {
    per_mille: u32,
    max_delay: Duration,
}

/// A seeded, deterministic fault schedule.
///
/// Built with the fluent methods below; all rates are per-mille (0–1000).
/// Decisions are pure functions of the seed and the site's arguments: the
/// same plan run against the same program targets the same instances,
/// regardless of thread interleaving. Delays are derived from the same hash,
/// uniformly in `[0, max)`.
///
/// ```
/// use std::time::Duration;
/// use tflux_runtime::FaultPlan;
///
/// let plan = FaultPlan::new(42)
///     .body_panic(50)                                   // 5% of attempts
///     .body_delay(200, Duration::from_micros(100))      // 20% delayed
///     .dropped_bell(300);                               // 30% lost wakeups
/// # let _ = plan;
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    body_panic: u32,
    body_delay: Arm,
    kernel_stall: Arm,
    tub_delay: Arm,
    drain_jitter: Arm,
    dropped_bell: u32,
    always_panic: Vec<Instance>,
    panic_first: Vec<(Instance, u32)>,
    counters: Counters,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Make each body attempt panic with probability `per_mille`/1000.
    /// Decisions vary by attempt, so retried instances can recover.
    pub fn body_panic(mut self, per_mille: u32) -> Self {
        self.body_panic = per_mille.min(1000);
        self
    }

    /// Delay body dispatch with probability `per_mille`/1000, by a
    /// deterministic duration in `[0, max)`.
    pub fn body_delay(mut self, per_mille: u32, max: Duration) -> Self {
        self.body_delay = Arm {
            per_mille: per_mille.min(1000),
            max_delay: max,
        };
        self
    }

    /// Stall a kernel's fetch loop with probability `per_mille`/1000 per
    /// iteration, for a deterministic duration in `[0, max)`.
    pub fn kernel_stall(mut self, per_mille: u32, max: Duration) -> Self {
        self.kernel_stall = Arm {
            per_mille: per_mille.min(1000),
            max_delay: max,
        };
        self
    }

    /// Delay TUB publishes with probability `per_mille`/1000, by a
    /// deterministic duration in `[0, max)`.
    pub fn tub_publish_delay(mut self, per_mille: u32, max: Duration) -> Self {
        self.tub_delay = Arm {
            per_mille: per_mille.min(1000),
            max_delay: max,
        };
        self
    }

    /// Delay emulator drains with probability `per_mille`/1000 per round,
    /// by a deterministic duration in `[0, max)`.
    pub fn drain_jitter(mut self, per_mille: u32, max: Duration) -> Self {
        self.drain_jitter = Arm {
            per_mille: per_mille.min(1000),
            max_delay: max,
        };
        self
    }

    /// Suppress the emulator wakeup signal after a TUB publish with
    /// probability `per_mille`/1000.
    pub fn dropped_bell(mut self, per_mille: u32) -> Self {
        self.dropped_bell = per_mille.min(1000);
        self
    }

    /// Target one instance: its body panics on *every* attempt (retries
    /// can never save it — the way to provoke poisoning and stalls).
    pub fn panic_at(mut self, instance: Instance) -> Self {
        self.always_panic.push(instance);
        self
    }

    /// Target one instance: its body panics on the first `attempts`
    /// attempts, then succeeds (the way to provoke and verify retries).
    pub fn panic_first(mut self, instance: Instance, attempts: u32) -> Self {
        self.panic_first.push((instance, attempts));
        self
    }

    /// Snapshot of how many faults this plan has injected so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            body_panics: self.counters.body_panics.load(Ordering::Relaxed),
            body_delays: self.counters.body_delays.load(Ordering::Relaxed),
            kernel_stalls: self.counters.kernel_stalls.load(Ordering::Relaxed),
            tub_delays: self.counters.tub_delays.load(Ordering::Relaxed),
            dropped_bells: self.counters.dropped_bells.load(Ordering::Relaxed),
            drain_jitters: self.counters.drain_jitters.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn roll(&self, site: u64, key: u64) -> u64 {
        mix(self.seed ^ mix(site ^ key))
    }

    #[inline]
    fn hit(&self, site: u64, key: u64, per_mille: u32) -> bool {
        per_mille > 0 && self.roll(site, key) % 1000 < per_mille as u64
    }

    #[inline]
    fn scaled(&self, site: u64, key: u64, max: Duration) -> Duration {
        let span = max.as_nanos().min(u64::MAX as u128) as u64;
        if span == 0 {
            return Duration::ZERO;
        }
        // reuse the hash of a shifted key so the delay is independent of
        // the hit decision
        Duration::from_nanos(self.roll(site, key.wrapping_add(1)) % span)
    }
}

impl FaultInjector for FaultPlan {
    fn before_body(&self, _kernel: KernelId, instance: Instance, attempt: u32) -> BodyFault {
        if self.always_panic.contains(&instance) {
            self.counters.body_panics.fetch_add(1, Ordering::Relaxed);
            return BodyFault::Panic;
        }
        if self
            .panic_first
            .iter()
            .any(|&(i, n)| i == instance && attempt <= n)
        {
            self.counters.body_panics.fetch_add(1, Ordering::Relaxed);
            return BodyFault::Panic;
        }
        let key = instance_key(instance) ^ mix(attempt as u64);
        if self.hit(SITE_BODY_PANIC, key, self.body_panic) {
            self.counters.body_panics.fetch_add(1, Ordering::Relaxed);
            return BodyFault::Panic;
        }
        if self.hit(SITE_BODY_DELAY, key, self.body_delay.per_mille) {
            self.counters.body_delays.fetch_add(1, Ordering::Relaxed);
            return BodyFault::Delay(self.scaled(SITE_BODY_DELAY, key, self.body_delay.max_delay));
        }
        BodyFault::Pass
    }

    fn kernel_stall(&self, kernel: KernelId, iteration: u64) -> Option<Duration> {
        let key = ((kernel.0 as u64) << 48) ^ iteration;
        if self.hit(SITE_KERNEL_STALL, key, self.kernel_stall.per_mille) {
            self.counters.kernel_stalls.fetch_add(1, Ordering::Relaxed);
            Some(self.scaled(SITE_KERNEL_STALL, key, self.kernel_stall.max_delay))
        } else {
            None
        }
    }

    fn tub_publish_delay(&self, instance: Instance) -> Option<Duration> {
        let key = instance_key(instance);
        if self.hit(SITE_TUB_DELAY, key, self.tub_delay.per_mille) {
            self.counters.tub_delays.fetch_add(1, Ordering::Relaxed);
            Some(self.scaled(SITE_TUB_DELAY, key, self.tub_delay.max_delay))
        } else {
            None
        }
    }

    fn drop_bell(&self, instance: Instance) -> bool {
        if self.hit(SITE_DROPPED_BELL, instance_key(instance), self.dropped_bell) {
            self.counters.dropped_bells.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn drain_jitter(&self, round: u64) -> Option<Duration> {
        if self.hit(SITE_DRAIN_JITTER, round, self.drain_jitter.per_mille) {
            self.counters.drain_jitters.fetch_add(1, Ordering::Relaxed);
            Some(self.scaled(SITE_DRAIN_JITTER, round, self.drain_jitter.max_delay))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tflux_core::ids::{Context, ThreadId};

    fn inst(t: u32, c: u32) -> Instance {
        Instance::new(ThreadId(t), Context(c))
    }

    #[test]
    fn no_faults_injects_nothing() {
        let f = NoFaults;
        assert_eq!(f.before_body(KernelId(0), inst(1, 2), 1), BodyFault::Pass);
        assert_eq!(f.kernel_stall(KernelId(0), 7), None);
        assert_eq!(f.tub_publish_delay(inst(1, 2)), None);
        assert!(!f.drop_bell(inst(1, 2)));
        assert_eq!(f.drain_jitter(3), None);
    }

    #[test]
    fn zero_rate_plan_never_fires() {
        let plan = FaultPlan::new(99);
        for t in 0..8 {
            for c in 0..8 {
                assert_eq!(
                    plan.before_body(KernelId(0), inst(t, c), 1),
                    BodyFault::Pass
                );
                // qualified: the `FaultPlan` builder method of the same
                // name would otherwise shadow the injector trait method
                assert_eq!(FaultInjector::tub_publish_delay(&plan, inst(t, c)), None);
                assert!(!plan.drop_bell(inst(t, c)));
            }
        }
        assert_eq!(plan.counts().total(), 0);
    }

    #[test]
    fn full_rate_plan_always_fires() {
        let plan = FaultPlan::new(7).body_panic(1000).dropped_bell(1000);
        for t in 0..8 {
            assert_eq!(
                plan.before_body(KernelId(0), inst(t, 0), 1),
                BodyFault::Panic
            );
            assert!(plan.drop_bell(inst(t, 0)));
        }
        let c = plan.counts();
        assert_eq!(c.body_panics, 8);
        assert_eq!(c.dropped_bells, 8);
        assert_eq!(c.total(), 16);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultPlan::new(1234).body_panic(300).dropped_bell(300);
        let b = FaultPlan::new(1234).body_panic(300).dropped_bell(300);
        for t in 0..16 {
            for c in 0..16 {
                assert_eq!(
                    a.before_body(KernelId(1), inst(t, c), 1),
                    b.before_body(KernelId(1), inst(t, c), 1)
                );
                assert_eq!(a.drop_bell(inst(t, c)), b.drop_bell(inst(t, c)));
            }
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = FaultPlan::new(1).body_panic(500);
        let b = FaultPlan::new(2).body_panic(500);
        let differs = (0..64).any(|t| {
            a.before_body(KernelId(0), inst(t, 0), 1) != b.before_body(KernelId(0), inst(t, 0), 1)
        });
        assert!(differs, "seeds 1 and 2 made identical panic decisions");
    }

    #[test]
    fn rate_is_roughly_respected() {
        let plan = FaultPlan::new(42).dropped_bell(250);
        let fired = (0..4000)
            .filter(|&k| plan.drop_bell(inst(k / 64, k % 64)))
            .count();
        // 25% ± generous slack; the point is "not 0% and not 100%"
        assert!((600..1400).contains(&fired), "fired {fired}/4000");
    }

    #[test]
    fn targeted_panics_fire_exactly_as_asked() {
        let plan = FaultPlan::new(0)
            .panic_at(inst(3, 1))
            .panic_first(inst(4, 0), 2);
        // always_panic: every attempt
        for attempt in 1..5 {
            assert_eq!(
                plan.before_body(KernelId(0), inst(3, 1), attempt),
                BodyFault::Panic
            );
        }
        // panic_first: attempts 1 and 2 fail, 3 succeeds
        assert_eq!(
            plan.before_body(KernelId(0), inst(4, 0), 1),
            BodyFault::Panic
        );
        assert_eq!(
            plan.before_body(KernelId(0), inst(4, 0), 2),
            BodyFault::Panic
        );
        assert_eq!(
            plan.before_body(KernelId(0), inst(4, 0), 3),
            BodyFault::Pass
        );
        // untargeted instances untouched
        assert_eq!(
            plan.before_body(KernelId(0), inst(5, 0), 1),
            BodyFault::Pass
        );
    }

    #[test]
    fn delays_are_bounded_and_deterministic() {
        let plan = FaultPlan::new(9).body_delay(1000, Duration::from_micros(50));
        for t in 0..32 {
            match plan.before_body(KernelId(0), inst(t, 0), 1) {
                BodyFault::Delay(d) => {
                    assert!(d < Duration::from_micros(50));
                    // deterministic replay
                    assert_eq!(
                        plan.before_body(KernelId(0), inst(t, 0), 1),
                        BodyFault::Delay(d)
                    );
                }
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }
}
