//! # tflux-runtime — TFluxSoft, the software-TSU platform
//!
//! A real, threaded implementation of the TFluxSoft architecture of §4.2 of
//! the TFlux paper, targeting commodity shared-memory multicores:
//!
//! * `n` **Kernels**, each an OS thread, run the Kernel loop of Fig. 2:
//!   fetch a ready DThread from the kernel's *Local TSU* (its ready queue),
//!   jump into the DThread body, and on completion hand the instance to the
//!   post-processing machinery. Body dispatch is a plain closure call —
//!   the Rust analogue of the paper's "Kernel code and application DThread
//!   code in the same function", i.e. no OS involvement per DThread.
//! * One **TSU Emulator** thread owns the global
//!   [`TsuState`](tflux_core::TsuState) and performs the Post-Processing
//!   Phase: it drains the [TUB](tub::Tub), decrements consumers' ready
//!   counts in the per-kernel Synchronization Memories and enqueues
//!   newly-ready instances on the owning kernel's ready queue, located
//!   directly via the Thread-to-Kernel Table (the program's
//!   [`Affinity`](tflux_core::Affinity) assignment — *Thread Indexing*).
//! * The **TUB** (Thread-to-Update Buffer) is segmented; kernels publish
//!   completions with `try_lock` over the segments so a kernel never blocks
//!   behind another kernel's segment (§4.2).
//!
//! One deliberate simplification relative to the paper's prose: TUB entries
//! carry the *completed* instance and the emulator expands its consumer
//! list, rather than kernels pre-expanding consumer identifiers into the
//! TUB. The observable synchronization behaviour is identical (the paper's
//! split only redistributes CPU work, which the `tflux-sim` cost models do
//! capture); doing the expansion in the emulator keeps the ready-count
//! store single-owner.
//!
//! ```
//! use tflux_core::prelude::*;
//! use tflux_runtime::{BodyTable, Runtime, RuntimeConfig, SharedVar};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // sum of squares 0..8 via a fork-join DDM program
//! let mut b = ProgramBuilder::new();
//! let blk = b.block();
//! let work = b.thread(blk, ThreadSpec::new("work", 8));
//! let sink = b.thread(blk, ThreadSpec::scalar("sink"));
//! b.arc(work, sink, ArcMapping::Reduction).unwrap();
//! let program = b.build().unwrap();
//!
//! let partial = SharedVar::<u64>::new(8);
//! let total = AtomicU64::new(0);
//! let mut bodies = BodyTable::new(&program);
//! bodies.set(work, |ctx| {
//!     let i = ctx.context.0 as u64;
//!     partial.put(ctx.context, i * i);
//! });
//! bodies.set(sink, |_| {
//!     total.store((0..8).map(|c| *partial.get(Context(c))).sum(), Ordering::Relaxed);
//! });
//!
//! let report = Runtime::new(RuntimeConfig::with_kernels(2))
//!     .run(&program, &bodies)
//!     .unwrap();
//! assert_eq!(total.load(Ordering::Relaxed), (0..8u64).map(|i| i * i).sum());
//! assert_eq!(report.tsu.completions as usize, program.total_instances());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod body;
pub mod emulator;
pub mod faults;
pub mod kernel;
pub mod runtime;
pub mod shared;
pub mod sm;
pub mod stats;
pub mod tub;

pub use body::{BodyCtx, BodyTable};
pub use faults::{BodyFault, FaultCounts, FaultInjector, FaultPlan, NoFaults};
pub use runtime::{RetryPolicy, Runtime, RuntimeConfig, RuntimeError};
pub use shared::SharedVar;
pub use stats::{InFlightInstance, RunReport, StallReport};
pub use tub::TubBackoff;
