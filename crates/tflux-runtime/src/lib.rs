//! # tflux-runtime — TFluxSoft, the software-TSU platform
//!
//! A real, threaded implementation of the TFluxSoft architecture of §4.2 of
//! the TFlux paper, targeting commodity shared-memory multicores:
//!
//! * `n` **Kernels**, each an OS thread, run the Kernel loop of Fig. 2:
//!   fetch a ready DThread from the kernel's *Local TSU* (its ready queue),
//!   jump into the DThread body, and on completion run the Post-Processing
//!   Phase. Body dispatch is a plain closure call — the Rust analogue of
//!   the paper's "Kernel code and application DThread code in the same
//!   function", i.e. no OS involvement per DThread.
//! * The shared software TSU ([`SoftTsu`]) composes the
//!   units of [`tflux_core::tsu`]: a read-only Graph Memory and a
//!   **lock-free Synchronization Memory** (atomic ready-count slots).
//!   *Application* completions take the direct-update path — the
//!   completing kernel decrements its consumers' ready counts with
//!   atomic `fetch_sub`s and enqueues instances it drove to zero on the
//!   owning kernel's queue, located directly via the Thread-to-Kernel
//!   Table (the program's [`Affinity`](tflux_core::Affinity) assignment —
//!   *Thread Indexing*). Completions touch no locks on this path, so
//!   they neither serialize on one thread nor contend with each other.
//! * One **TSU Emulator** thread keeps the single-owner duties: it drains
//!   the [TUB](tub::Tub) of *Inlet*/*Outlet* completions to load and
//!   unload DDM blocks, runs the watchdog, and collects protocol errors.
//! * The **TUB** (Thread-to-Update Buffer) is segmented; kernels publish
//!   block transitions with `try_lock` over the segments so a kernel never
//!   blocks behind another kernel's segment (§4.2).
//!
//! ```
//! use tflux_core::prelude::*;
//! use tflux_runtime::{BodyTable, Runtime, RuntimeConfig, SharedVar};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // sum of squares 0..8 via a fork-join DDM program
//! let mut b = ProgramBuilder::new();
//! let blk = b.block();
//! let work = b.thread(blk, ThreadSpec::new("work", 8));
//! let sink = b.thread(blk, ThreadSpec::scalar("sink"));
//! b.arc(work, sink, ArcMapping::Reduction).unwrap();
//! let program = b.build().unwrap();
//!
//! let partial = SharedVar::<u64>::new(8);
//! let total = AtomicU64::new(0);
//! let mut bodies = BodyTable::new(&program);
//! bodies.set(work, |ctx| {
//!     let i = ctx.context.0 as u64;
//!     partial.put(ctx.context, i * i);
//! });
//! bodies.set(sink, |_| {
//!     total.store((0..8).map(|c| *partial.get(Context(c))).sum(), Ordering::Relaxed);
//! });
//!
//! let report = Runtime::new(RuntimeConfig::with_kernels(2))
//!     .run(&program, &bodies)
//!     .unwrap();
//! assert_eq!(total.load(Ordering::Relaxed), (0..8u64).map(|i| i * i).sum());
//! assert_eq!(report.tsu.completions as usize, program.total_instances());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod body;
pub mod emulator;
pub mod faults;
pub mod kernel;
pub mod runtime;
pub mod server;
pub mod shared;
pub mod sm;
pub mod soft;
pub mod stats;
pub mod tub;

pub use body::{BodyCtx, BodyTable};
pub use faults::{BodyFault, FaultCounts, FaultInjector, FaultPlan, NoFaults};
pub use runtime::{RetryPolicy, Runtime, RuntimeConfig, RuntimeError};
pub use server::{Admission, ProgramServer, ServerConfig, Submission, Submit, SubmitError};
pub use shared::SharedVar;
pub use soft::SoftTsu;
pub use stats::{InFlightInstance, RunReport, StallReport, TenantReport};
// the one fetch vocabulary shared with the core TSU units
pub use tflux_core::tsu::{FetchResult, ShardStats, TsuBackend};
pub use tub::TubBackoff;
