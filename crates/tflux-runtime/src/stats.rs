//! Execution reports for TFluxSoft runs.

use crate::tub::TubSnapshot;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use tflux_core::tsu::TsuStats;

/// Per-kernel counters.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct KernelStats {
    /// DThread instances this kernel executed.
    pub executed: u64,
    /// Nanoseconds spent blocked on an empty ready queue.
    pub wait_ns: u64,
    /// Pops that found the queue empty and had to block.
    pub blocked_pops: u64,
    /// Instances taken from another kernel's queue.
    pub steals: u64,
}

/// One executed instance in a wall-clock trace (see
/// [`Runtime::run_traced`](crate::Runtime::run_traced)).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RtSpan {
    /// Kernel that executed the body.
    pub kernel: u32,
    /// The instance.
    pub instance: tflux_core::ids::Instance,
    /// Nanoseconds from run start to body entry.
    pub start_ns: u64,
    /// Nanoseconds from run start to body exit.
    pub end_ns: u64,
}

/// The result of one [`crate::Runtime::run`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Wall-clock duration of the whole run (kernel launch to last join).
    pub wall: Duration,
    /// TSU state-machine counters (completions, ready-count updates, …).
    pub tsu: TsuStats,
    /// TUB contention counters.
    pub tub: TubSnapshot,
    /// Per-kernel counters, indexed by kernel id.
    pub kernels: Vec<KernelStats>,
}

impl RunReport {
    /// Total DThread instances executed across kernels.
    pub fn total_executed(&self) -> u64 {
        self.kernels.iter().map(|k| k.executed).sum()
    }

    /// Coefficient of variation of per-kernel executed counts — a quick
    /// load-balance indicator (0 = perfectly balanced).
    pub fn load_imbalance(&self) -> f64 {
        let n = self.kernels.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let mean = self.total_executed() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .kernels
            .iter()
            .map(|k| {
                let d = k.executed as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_zero_when_balanced() {
        let r = RunReport {
            wall: Duration::from_millis(1),
            tsu: TsuStats::default(),
            tub: TubSnapshot::default(),
            kernels: vec![
                KernelStats {
                    executed: 5,
                    ..Default::default()
                },
                KernelStats {
                    executed: 5,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(r.total_executed(), 10);
        assert_eq!(r.load_imbalance(), 0.0);
    }

    #[test]
    fn imbalance_positive_when_skewed() {
        let r = RunReport {
            wall: Duration::from_millis(1),
            tsu: TsuStats::default(),
            tub: TubSnapshot::default(),
            kernels: vec![
                KernelStats {
                    executed: 10,
                    ..Default::default()
                },
                KernelStats {
                    executed: 0,
                    ..Default::default()
                },
            ],
        };
        assert!(r.load_imbalance() > 0.9);
    }

    #[test]
    fn single_kernel_has_no_imbalance() {
        let r = RunReport {
            wall: Duration::ZERO,
            tsu: TsuStats::default(),
            tub: TubSnapshot::default(),
            kernels: vec![KernelStats {
                executed: 3,
                ..Default::default()
            }],
        };
        assert_eq!(r.load_imbalance(), 0.0);
    }
}
