//! Execution reports for TFluxSoft runs, and the stall forensics report
//! assembled when the watchdog fires.

use crate::kernel::BodyPanic;
use crate::tub::TubSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;
use tflux_core::ids::{Instance, KernelId, ProgramId};
use tflux_core::tsu::{ShardStats, TsuStats, WaitingInstance};

/// Per-kernel counters.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct KernelStats {
    /// DThread instances this kernel executed.
    pub executed: u64,
    /// Nanoseconds spent blocked on an empty ready queue.
    pub wait_ns: u64,
    /// Pop *calls* that found the queue empty and had to block — each
    /// blocking call counts once, however many times its internal wait
    /// loop re-checked before work (or shutdown) arrived.
    pub blocked_pops: u64,
    /// Instances this kernel took from sibling queues and executed
    /// (successful steals). `executed - steals` is therefore the count of
    /// locally-served completions: together they are the stolen-vs-local
    /// split of this kernel's work.
    pub steals: u64,
    /// Victim probes that found the victim empty — including victims
    /// drained between the thief's length snapshot and the steal (the
    /// clean-miss path). High misses with low steals means this kernel
    /// kept scanning an idle machine.
    #[serde(default)]
    pub steal_misses: u64,
    /// Steal CAS attempts lost to the victim's owner or another thief.
    /// Each race is a wasted CAS, not lost work — the entry went to the
    /// winner. High races mean thieves piled onto the same victim.
    #[serde(default)]
    pub steal_races: u64,
    /// Panicked body attempts that were re-dispatched under the
    /// [`RetryPolicy`](crate::RetryPolicy).
    #[serde(default)]
    pub retries: u64,
    /// Instances whose completion was withheld after retry exhaustion
    /// (`poison_on_exhaust`); their consumers never fire.
    #[serde(default)]
    pub poisoned: u64,
}

/// One executed instance in a wall-clock trace (see
/// [`Runtime::run_traced`](crate::Runtime::run_traced)).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RtSpan {
    /// Kernel that executed the body.
    pub kernel: u32,
    /// The instance.
    pub instance: tflux_core::ids::Instance,
    /// Nanoseconds from run start to body entry.
    pub start_ns: u64,
    /// Nanoseconds from run start to body exit.
    pub end_ns: u64,
}

/// The result of one [`crate::Runtime::run`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Wall-clock duration of the whole run (kernel launch to last join).
    pub wall: Duration,
    /// TSU state-machine counters (completions, ready-count updates, …).
    pub tsu: TsuStats,
    /// TUB contention counters.
    pub tub: TubSnapshot,
    /// Per-kernel counters, indexed by kernel id.
    pub kernels: Vec<KernelStats>,
    /// Per-shard Synchronization Memory counters, indexed by the owning
    /// kernel: how many logical ready-count decrements landed on each
    /// shard (`rc_updates`), how many physical atomic RMWs carried them
    /// (`rc_rmws` — fewer when completion funnels batch), and how many
    /// contention events it saw (`contended`: slot-state CAS retries plus
    /// updates arriving from a different kernel than the previous
    /// updater). A hot `contended` entry means many kernels' completions
    /// pile into one consumer kernel's instances — the signature
    /// `FlushPolicy::Batch` flattens.
    #[serde(default)]
    pub sm_shards: Vec<ShardStats>,
}

impl RunReport {
    /// Total DThread instances executed across kernels.
    pub fn total_executed(&self) -> u64 {
        self.kernels.iter().map(|k| k.executed).sum()
    }

    /// Total panicked attempts that were re-dispatched across kernels.
    pub fn total_retries(&self) -> u64 {
        self.kernels.iter().map(|k| k.retries).sum()
    }

    /// Total instances poisoned (completion withheld) across kernels.
    pub fn total_poisoned(&self) -> u64 {
        self.kernels.iter().map(|k| k.poisoned).sum()
    }

    /// Total successful steals across kernels (instances executed away
    /// from their owning kernel's queue).
    pub fn total_steals(&self) -> u64 {
        self.kernels.iter().map(|k| k.steals).sum()
    }

    /// Coefficient of variation of per-kernel executed counts — a quick
    /// load-balance indicator (0 = perfectly balanced).
    pub fn load_imbalance(&self) -> f64 {
        let n = self.kernels.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let mean = self.total_executed() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .kernels
            .iter()
            .map(|k| {
                let d = k.executed as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

/// The result of one program's run through a
/// [`ProgramServer`](crate::server::ProgramServer): the per-tenant analogue
/// of [`RunReport`]. Kernel threads are shared between tenants in a server,
/// so there is no per-kernel breakdown here — the execution counters are
/// aggregated over whichever kernels happened to serve this tenant.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantReport {
    /// The id the server assigned this program at admission.
    pub id: ProgramId,
    /// Wall-clock duration from admission to the finishing completion.
    pub wall: Duration,
    /// This tenant's TSU counters (its arena is private, so these are
    /// exact, not shared with co-resident programs).
    pub tsu: TsuStats,
    /// Per-shard Synchronization Memory counters of this tenant's arena.
    pub sm_shards: Vec<ShardStats>,
    /// DThread instances of this program executed by the kernel pool.
    pub executed: u64,
    /// Panicked body attempts re-dispatched under the retry policy.
    pub retries: u64,
    /// Instances whose completion was withheld after retry exhaustion.
    pub poisoned: u64,
}

/// An instance that was dispatched to a kernel but never completed — the
/// prime suspect in a stall (its body may be stuck, or its completion may
/// have been poisoned after retry exhaustion).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InFlightInstance {
    /// The dispatched-but-unfinished instance.
    pub instance: Instance,
    /// The kernel the TSU handed it to.
    pub kernel: KernelId,
}

/// Forensic snapshot assembled when the watchdog declares a run stalled.
///
/// Instead of discarding the runtime state at abort, the emulator walks the
/// TSU Synchronization Memory and reports *who* is stuck and *why*: every
/// resident instance still waiting on producers (with its remaining ready
/// count), every instance dispatched to a kernel that never published a
/// completion, the ready-queue depths, and the TSU/TUB/kernel counters at
/// the moment of the stall. Carried by
/// [`RuntimeError::Stalled`](crate::RuntimeError) and pretty-printed by its
/// [`Display`](fmt::Display) impl.
#[derive(Clone, Debug)]
pub struct StallReport {
    /// How long the emulator saw no completion before giving up.
    pub idle: Duration,
    /// TSU counters at the moment of the stall.
    pub stats: TsuStats,
    /// TUB counters at the moment of the stall.
    pub tub: TubSnapshot,
    /// Resident instances still waiting on producer completions.
    pub waiting: Vec<WaitingInstance>,
    /// Instances dispatched to a kernel but never completed.
    pub in_flight: Vec<InFlightInstance>,
    /// Ready-queue depth per kernel at the moment of the stall.
    pub queue_depths: Vec<usize>,
    /// Per-kernel counters, filled in after the kernels are joined.
    pub kernels: Vec<KernelStats>,
    /// Body panics recorded before the stall (a poisoned producer is the
    /// most common stall cause), filled in after the kernels are joined.
    pub panics: Vec<BodyPanic>,
}

/// How many waiting / in-flight / panicked entries [`StallReport`]'s
/// `Display` lists before truncating with an "… and N more" line.
const STALL_DISPLAY_CAP: usize = 8;

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run stalled: no completion for {:?} (watchdog fired)",
            self.idle
        )?;
        writeln!(f, "  waiting instances: {}", self.waiting.len())?;
        for w in self.waiting.iter().take(STALL_DISPLAY_CAP) {
            writeln!(
                f,
                "    {} needs {} more completion{}",
                w.instance,
                w.remaining,
                if w.remaining == 1 { "" } else { "s" }
            )?;
        }
        if self.waiting.len() > STALL_DISPLAY_CAP {
            writeln!(
                f,
                "    … and {} more",
                self.waiting.len() - STALL_DISPLAY_CAP
            )?;
        }
        writeln!(
            f,
            "  dispatched but never completed: {}",
            self.in_flight.len()
        )?;
        for i in self.in_flight.iter().take(STALL_DISPLAY_CAP) {
            writeln!(f, "    {} on {}", i.instance, i.kernel)?;
        }
        if self.in_flight.len() > STALL_DISPLAY_CAP {
            writeln!(
                f,
                "    … and {} more",
                self.in_flight.len() - STALL_DISPLAY_CAP
            )?;
        }
        writeln!(f, "  ready-queue depths: {:?}", self.queue_depths)?;
        writeln!(
            f,
            "  tsu: {} completions, {} fetches, {} rc updates, {} blocks loaded",
            self.stats.completions,
            self.stats.fetches,
            self.stats.rc_updates,
            self.stats.blocks_loaded
        )?;
        writeln!(
            f,
            "  tub: {} pushes, {} dropped bells",
            self.tub.pushes, self.tub.dropped_bells
        )?;
        let poisoned: u64 = self.kernels.iter().map(|k| k.poisoned).sum();
        writeln!(
            f,
            "  kernels: {} joined, {} poisoned instance{}",
            self.kernels.len(),
            poisoned,
            if poisoned == 1 { "" } else { "s" }
        )?;
        writeln!(f, "  body panics before the stall: {}", self.panics.len())?;
        for p in self.panics.iter().take(STALL_DISPLAY_CAP) {
            writeln!(
                f,
                "    {} after {} attempt{}: {}",
                p.instance,
                p.attempts,
                if p.attempts == 1 { "" } else { "s" },
                p.message
            )?;
        }
        if self.panics.len() > STALL_DISPLAY_CAP {
            writeln!(
                f,
                "    … and {} more",
                self.panics.len() - STALL_DISPLAY_CAP
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_zero_when_balanced() {
        let r = RunReport {
            wall: Duration::from_millis(1),
            tsu: TsuStats::default(),
            tub: TubSnapshot::default(),
            kernels: vec![
                KernelStats {
                    executed: 5,
                    ..Default::default()
                },
                KernelStats {
                    executed: 5,
                    ..Default::default()
                },
            ],
            sm_shards: Vec::new(),
        };
        assert_eq!(r.total_executed(), 10);
        assert_eq!(r.load_imbalance(), 0.0);
    }

    #[test]
    fn imbalance_positive_when_skewed() {
        let r = RunReport {
            wall: Duration::from_millis(1),
            tsu: TsuStats::default(),
            tub: TubSnapshot::default(),
            kernels: vec![
                KernelStats {
                    executed: 10,
                    ..Default::default()
                },
                KernelStats {
                    executed: 0,
                    ..Default::default()
                },
            ],
            sm_shards: Vec::new(),
        };
        assert!(r.load_imbalance() > 0.9);
    }

    #[test]
    fn stall_report_display_names_the_stuck_instances() {
        use tflux_core::ids::{Context, ThreadId};
        let report = StallReport {
            idle: Duration::from_millis(250),
            stats: TsuStats::default(),
            tub: TubSnapshot::default(),
            waiting: vec![WaitingInstance {
                instance: Instance::new(ThreadId(1), Context(0)),
                remaining: 1,
            }],
            in_flight: vec![InFlightInstance {
                instance: Instance::new(ThreadId(0), Context(0)),
                kernel: KernelId(2),
            }],
            queue_depths: vec![0, 0, 1],
            kernels: vec![KernelStats {
                poisoned: 1,
                ..Default::default()
            }],
            panics: vec![BodyPanic {
                instance: Instance::new(ThreadId(0), Context(0)),
                message: "boom".into(),
                attempts: 2,
            }],
        };
        let text = format!("{report}");
        assert!(text.contains("run stalled"));
        assert!(text.contains(&format!("{}", Instance::new(ThreadId(1), Context(0)))));
        assert!(text.contains("needs 1 more completion"));
        assert!(text.contains(&format!("on {}", KernelId(2))));
        assert!(text.contains("1 poisoned instance"));
        assert!(text.contains("after 2 attempts: boom"));
    }

    #[test]
    fn retry_totals_sum_over_kernels() {
        let r = RunReport {
            wall: Duration::ZERO,
            tsu: TsuStats::default(),
            tub: TubSnapshot::default(),
            kernels: vec![
                KernelStats {
                    retries: 2,
                    poisoned: 1,
                    ..Default::default()
                },
                KernelStats {
                    retries: 3,
                    ..Default::default()
                },
            ],
            sm_shards: Vec::new(),
        };
        assert_eq!(r.total_retries(), 5);
        assert_eq!(r.total_poisoned(), 1);
    }

    #[test]
    fn single_kernel_has_no_imbalance() {
        let r = RunReport {
            wall: Duration::ZERO,
            tsu: TsuStats::default(),
            tub: TubSnapshot::default(),
            kernels: vec![KernelStats {
                executed: 3,
                ..Default::default()
            }],
            sm_shards: Vec::new(),
        };
        assert_eq!(r.load_imbalance(), 0.0);
    }
}
