//! Regeneration of every table and figure of the paper's evaluation.

use crate::json::{Json, ToJson};
use tflux_cell::{CellConfig, CellMachine};
use tflux_sim::{Machine, MachineConfig, TsuCosts};
use tflux_workloads::common::Params;
use tflux_workloads::setup::{
    cell_baseline, cell_setup, sim_baseline, sim_setup, with_default_unroll,
};
use tflux_workloads::sizes::{Platform, SizeClass};
use tflux_workloads::Bench;

/// One data point of a speedup figure.
#[derive(Clone, Debug)]
pub struct FigRow {
    /// Benchmark name as the paper prints it.
    pub bench: &'static str,
    /// Size-class label.
    pub size: &'static str,
    /// Kernel count.
    pub kernels: u32,
    /// Measured speedup over the sequential baseline.
    pub speedup: f64,
    /// Share of memory accesses that were coherency (remote) misses.
    pub coherency_ratio: f64,
    /// Average core utilization.
    pub utilization: f64,
}

impl ToJson for FigRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("bench", self.bench.to_json()),
            ("size", self.size.to_json()),
            ("kernels", self.kernels.to_json()),
            ("speedup", self.speedup.to_json()),
            ("coherency_ratio", self.coherency_ratio.to_json()),
            ("utilization", self.utilization.to_json()),
        ])
    }
}

fn hard_machine(kernels: u32) -> Machine {
    Machine::new(MachineConfig::bagle(kernels))
}

fn soft_machine(kernels: u32) -> Machine {
    Machine::new(MachineConfig::xeon_x3650(kernels))
}

fn sizes_for(quick: bool) -> &'static [SizeClass] {
    if quick {
        &[SizeClass::Small]
    } else {
        &[SizeClass::Small, SizeClass::Medium, SizeClass::Large]
    }
}

/// Run one simulated configuration and its baseline; return the row.
fn sim_point(bench: Bench, machine: &Machine, p: &Params) -> FigRow {
    let (prog, src) = sim_setup(bench, p);
    let (seq_prog, seq_src) = sim_baseline(bench, p);
    let seq = machine.run_sequential(&seq_prog, seq_src.as_ref());
    let par = machine.run(&prog, src.as_ref()).expect("sim run");
    FigRow {
        bench: bench.name(),
        size: p.size.label(),
        kernels: p.kernels,
        speedup: par.speedup_over(&seq),
        coherency_ratio: par.mem.coherency_ratio(),
        utilization: par.utilization(),
    }
}

/// **Figure 5** — TFluxHard speedups: 5 benchmarks × kernels {2,4,8,16,27}
/// × {Small, Medium, Large} on the simulated 28-core Bagle machine with
/// the hardware TSU Group (one core reserved for the OS, hence 27).
pub fn fig5(quick: bool) -> Vec<FigRow> {
    let kernel_counts: &[u32] = if quick {
        &[2, 8, 27]
    } else {
        &[2, 4, 8, 16, 27]
    };
    let mut rows = Vec::new();
    for bench in Bench::ALL {
        for &size in sizes_for(quick) {
            for &k in kernel_counts {
                let p = with_default_unroll(bench, Params::hard(k, 0, size));
                rows.push(sim_point(bench, &hard_machine(k), &p));
            }
        }
    }
    rows
}

/// **Figure 6** — TFluxSoft speedups: 5 benchmarks × kernels {2,4,6} ×
/// {S,M,L} on the Xeon-like machine model with the software-TSU cost model
/// (the TSU Emulator occupies its own core, which the device model charges
/// rather than simulates).
///
/// MMULT runs the *Simulated* (64–256) sizes rather than the native
/// 256–1024: the native Large would take hundreds of millions of simulated
/// accesses per point without changing the curve's shape (see
/// EXPERIMENTS.md).
pub fn fig6(quick: bool) -> Vec<FigRow> {
    let kernel_counts: &[u32] = if quick { &[2, 6] } else { &[2, 4, 6] };
    let mut rows = Vec::new();
    for bench in Bench::ALL {
        for &size in sizes_for(quick) {
            for &k in kernel_counts {
                let platform = if bench == Bench::Mmult {
                    Platform::Simulated
                } else {
                    Platform::Native
                };
                let mut p = Params {
                    kernels: k,
                    unroll: 0,
                    size,
                    platform,
                };
                p.unroll = tflux_workloads::setup::default_unroll(bench, Platform::Native);
                rows.push(sim_point(bench, &soft_machine(k), &p));
            }
        }
    }
    rows
}

/// **Figure 7** — TFluxCell speedups: 4 benchmarks (no FFT) × SPE counts
/// {2,4,6} × {S,M,L} on the simulated PS3.
pub fn fig7(quick: bool) -> Vec<FigRow> {
    let spe_counts: &[u32] = if quick { &[2, 6] } else { &[2, 4, 6] };
    let mut rows = Vec::new();
    for bench in Bench::CELL {
        for &size in sizes_for(quick) {
            for &k in spe_counts {
                let p = with_default_unroll(bench, Params::cell(k, 0, size));
                let (prog, src) = cell_setup(bench, &p);
                let (seq_prog, seq_src) = cell_baseline(bench, &p);
                let m = CellMachine::new(CellConfig::ps3().with_spes(k));
                let seq = m
                    .run_sequential(&seq_prog, seq_src.as_ref())
                    .expect("cell baseline");
                let par = m.run(&prog, src.as_ref()).expect("cell run");
                rows.push(FigRow {
                    bench: bench.name(),
                    size: p.size.label(),
                    kernels: k,
                    speedup: par.speedup_over(&seq),
                    coherency_ratio: 0.0,
                    utilization: par.dma_fraction(),
                });
            }
        }
    }
    rows
}

/// **§4.1 claim** — sweeping the hardware TSU's per-command processing
/// time from 1 to 128 cycles changes execution time by <1%. Returns
/// `(op_cycles, cycles, delta_vs_op1)` per point.
pub fn tsu_latency(quick: bool) -> Vec<(u64, u64, f64)> {
    let bench = Bench::Mmult;
    // Medium even in quick mode: the <1% claim needs realistic DThread
    // grain, and the Medium sweep takes well under a second
    let size = SizeClass::Medium;
    let p = with_default_unroll(bench, Params::hard(8, 0, size));
    let ops: &[u64] = if quick {
        &[1, 128]
    } else {
        &[1, 4, 16, 64, 128]
    };
    let mut out = Vec::new();
    let mut base = 0u64;
    for &op in ops {
        let cfg = MachineConfig::bagle(8).with_tsu(TsuCosts {
            op,
            ..TsuCosts::hard()
        });
        let (prog, src) = sim_setup(bench, &p);
        let r = Machine::new(cfg).run(&prog, src.as_ref()).expect("sim run");
        if base == 0 {
            base = r.cycles;
        }
        let delta = (r.cycles as f64 - base as f64) / base as f64;
        out.push((op, r.cycles, delta));
    }
    out
}

/// **§5/§6.2.2/§6.3** — the unroll study on MMULT: speedup as a function
/// of the unroll factor (1..64) on all three platforms. Reproduces "for
/// the TFluxHard the best speedup can be reached even with small unroll
/// factors (2 or 4) whereas for TFluxSoft the loops needed to be unrolled
/// more than 16 times" and the Cell's need for 64.
/// Returns `(platform, unroll, speedup)` triples.
pub fn unroll_study(quick: bool) -> Vec<(&'static str, u32, f64)> {
    use tflux_workloads::mmult::elem_setup;
    let factors: &[u32] = if quick {
        &[1, 16, 64]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let mut out = Vec::new();
    let size = SizeClass::Small;
    for &u in factors {
        let p = Params::hard(8, u, size);
        out.push(("hard", u, {
            let (prog, src) = elem_setup(&p);
            let m = hard_machine(8);
            let seq = m.run_sequential(&prog, &src);
            m.run(&prog, &src).expect("sim run").speedup_over(&seq)
        }));
    }
    for &u in factors {
        let p = Params {
            kernels: 6,
            unroll: u,
            size,
            platform: Platform::Simulated, // MMULT soft uses sim sizes
        };
        out.push(("soft", u, {
            let (prog, src) = elem_setup(&p);
            let m = soft_machine(6);
            let seq = m.run_sequential(&prog, &src);
            m.run(&prog, &src).expect("sim run").speedup_over(&seq)
        }));
    }
    for &u in factors {
        let p = Params {
            kernels: 6,
            unroll: u,
            size,
            platform: Platform::Simulated, // small matrix: SPE-friendly
        };
        out.push(("cell", u, {
            let (prog, src) = elem_setup(&p);
            let m = CellMachine::new(CellConfig::ps3());
            let seq = m
                .run_sequential(&prog, &src as &dyn tflux_cell::work::CellWorkSource)
                .expect("seq");
            m.run(&prog, &src as &dyn tflux_cell::work::CellWorkSource)
                .expect("run")
                .speedup_over(&seq)
        }));
    }
    out
}

/// **§3.3 ablation** — the TSU Group against a degraded configuration
/// whose TSU-to-TSU updates cross the system bus (modeled by inflating the
/// per-command cost by the bus transfer time, as separate per-CPU TSUs
/// would require). Returns `(label, cycles)` pairs for MMULT/8 kernels.
pub fn tsu_group_ablation(quick: bool) -> Vec<(&'static str, u64)> {
    let size = if quick {
        SizeClass::Small
    } else {
        SizeClass::Medium
    };
    let p = with_default_unroll(Bench::Mmult, Params::hard(8, 0, size));
    let (prog, src) = sim_setup(Bench::Mmult, &p);
    let grouped = Machine::new(MachineConfig::bagle(8))
        .run(&prog, src.as_ref())
        .expect("sim run");
    let base = MachineConfig::bagle(8);
    let split_cfg = base.with_tsu(TsuCosts {
        // each update becomes a bus-crossing message between per-CPU TSUs
        op: TsuCosts::hard().op + base.bus_transfer,
        access: TsuCosts::hard().access + base.bus_transfer,
        ..TsuCosts::hard()
    });
    let split = Machine::new(split_cfg)
        .run(&prog, src.as_ref())
        .expect("sim run");
    vec![
        ("tsu-group (shared unit)", grouped.cycles),
        ("per-cpu TSUs (bus-linked)", split.cycles),
    ]
}

/// **§3.3 extension** — multiple TSU Groups (named as under development in
/// the paper): fine-grained TRAPEZ on 27 kernels with the TSU Group split
/// into {1, 2, 4} shards. With one group every fetch/completion of all 27
/// kernels serializes through a single unit; sharding relieves that at the
/// price of cross-group update messages. Returns `(groups, cycles,
/// cross_updates)`.
pub fn tsu_groups_scaling(quick: bool) -> Vec<(u32, u64, u64)> {
    // fine grain so the TSU is actually contended
    let p = Params::hard(27, 8, SizeClass::Small);
    let groups: &[u32] = if quick { &[1, 4] } else { &[1, 2, 4] };
    let mut out = Vec::new();
    for &g in groups {
        let cfg = MachineConfig::bagle(27).with_tsu_groups(g);
        let (prog, src) = tflux_workloads::mmult::elem_setup(&p);
        let r = Machine::new(cfg).run(&prog, &src).expect("sim run");
        out.push((g, r.cycles, r.dev.cross_updates));
    }
    out
}

/// **§6.1.2 exploration** — QSORT merge-tree depth: "Trees of bigger depth
/// would result in higher parallelism but may not be always beneficial as
/// the number of steps would increase as well." Sweeps the pair-merge
/// depth at 27 kernels, Large size. Returns `(depth, speedup)`.
pub fn qsort_tree_depth(quick: bool) -> Vec<(u32, f64, f64)> {
    use tflux_workloads::qsort;
    let depths: &[u32] = if quick {
        &[0, 2, 6]
    } else {
        &[0, 1, 2, 3, 4, 5, 6]
    };
    let m = hard_machine(27);
    let point = |size: SizeClass, d: u32| {
        let p = Params::hard(27, 1, size);
        let (sprog, ssrc) = sim_baseline(Bench::Qsort, &p);
        let seq = m.run_sequential(&sprog, ssrc.as_ref());
        let (prog, ids) = qsort::program_with_depth(&p, d);
        let src = qsort::tree_sim_source(&p, ids);
        m.run(&prog, &src).expect("sim run").speedup_over(&seq)
    };
    depths
        .iter()
        .map(|&d| (d, point(SizeClass::Small, d), point(SizeClass::Large, d)))
        .collect()
}

/// **§6.1.2 cross-check** — "The same benchmarks have been executed on a
/// simulated 9 cores X86 system similar to Bagle. The speedup values
/// observed and conclusions drawn are similar to those reported." Runs all
/// five benchmarks at 8 kernels (9 cores, 1 reserved for the OS) on the
/// x86 preset and on Bagle; returns `(bench, x86_speedup, bagle_speedup)`.
pub fn fig5_x86(quick: bool) -> Vec<(&'static str, f64, f64)> {
    let size = if quick {
        SizeClass::Small
    } else {
        SizeClass::Medium
    };
    Bench::ALL
        .iter()
        .map(|&bench| {
            let p = with_default_unroll(bench, Params::hard(8, 0, size));
            let speedup = |m: &Machine| {
                let (prog, src) = sim_setup(bench, &p);
                let (sprog, ssrc) = sim_baseline(bench, &p);
                let seq = m.run_sequential(&sprog, ssrc.as_ref());
                m.run(&prog, src.as_ref())
                    .expect("sim run")
                    .speedup_over(&seq)
            };
            (
                bench.name(),
                speedup(&Machine::new(
                    MachineConfig::x86_9core(8).expect("8 kernels fit the 9-core x86"),
                )),
                speedup(&hard_machine(8)),
            )
        })
        .collect()
}

/// **Calibration** — measure the real threaded runtime's per-DThread
/// overhead on this host and compare it against the soft-TSU cost model
/// the Fig. 6 simulations charge. Runs a no-op fork/join of `n` DThreads
/// on 1 kernel (per-thread cost = full fetch+complete round trip without
/// concurrency noise) and converts wall time to cycles at `ghz`.
/// Returns `(measured_ns_per_dthread, measured_cycles, modeled_cycles)`.
pub fn calibrate_soft_overhead(ghz: f64) -> (f64, u64, u64) {
    use tflux_runtime::{BodyTable, Runtime, RuntimeConfig};
    let n = 20_000u32;
    let mut b = tflux_core::ProgramBuilder::new();
    let blk = b.block();
    b.thread(blk, tflux_core::ThreadSpec::new("noop", n));
    let prog = b.build().expect("program");
    let bodies = BodyTable::new(&prog);
    let rt = Runtime::new(RuntimeConfig::with_kernels(1));
    // warm-up + best-of-3, like the paper's multiple native runs
    let mut best = u64::MAX;
    for _ in 0..3 {
        let report = rt.run(&prog, &bodies).expect("run");
        best = best.min(report.wall.as_nanos() as u64);
    }
    let ns_per = best as f64 / n as f64;
    let measured_cycles = (ns_per * ghz) as u64;
    let model = TsuCosts::soft();
    let modeled = 2 * model.access + 2 * model.op + model.kernel_overhead;
    (ns_per, measured_cycles, modeled)
}

/// **Table 1** — the workload table, formatted.
pub fn table1_text() -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<8} {:<8} {:<40} {:<14} {:<14} {:<14}\n",
        "Bench", "Source", "Description", "Small", "Medium", "Large"
    ));
    for row in tflux_workloads::sizes::table1() {
        s.push_str(&format!(
            "{:<8} {:<8} {:<40} {:<14} {:<14} {:<14}\n",
            row.benchmark, row.source, row.description, row.sizes[0], row.sizes[1], row.sizes[2]
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_all_benchmarks() {
        let t = table1_text();
        for b in Bench::ALL {
            assert!(t.contains(b.name()), "{t}");
        }
    }

    #[test]
    fn fig5_quick_has_expected_row_count() {
        let rows = fig5(true);
        // 5 benchmarks x 1 size x 3 kernel counts
        assert_eq!(rows.len(), 15);
        assert!(rows.iter().all(|r| r.speedup > 0.0));
    }

    #[test]
    fn fig7_quick_excludes_fft() {
        let rows = fig7(true);
        assert!(rows.iter().all(|r| r.bench != "FFT"));
        assert_eq!(rows.len(), 4 * 2);
    }

    #[test]
    fn x86_crosscheck_tracks_bagle() {
        // §6.1.2: "speedup values observed and conclusions drawn are
        // similar" across the Sparc and x86 simulations
        for (bench, x86, bagle) in fig5_x86(true) {
            let ratio = x86 / bagle;
            assert!(
                (0.75..=1.25).contains(&ratio),
                "{bench}: x86 {x86:.2} vs bagle {bagle:.2}"
            );
        }
    }

    #[test]
    fn fig6_quick_covers_all_benchmarks() {
        let rows = fig6(true);
        assert_eq!(rows.len(), 5 * 2); // 5 benchmarks x {2,6} kernels
        for b in Bench::ALL {
            assert!(rows.iter().any(|r| r.bench == b.name()));
        }
        assert!(rows.iter().all(|r| r.speedup > 0.4));
    }

    #[test]
    fn unroll_quick_has_three_platforms() {
        let pts = unroll_study(true);
        for platform in ["hard", "soft", "cell"] {
            assert_eq!(pts.iter().filter(|p| p.0 == platform).count(), 3);
        }
        // soft at unroll 1 must be far worse than at 64
        let soft1 = pts.iter().find(|p| p.0 == "soft" && p.1 == 1).unwrap().2;
        let soft64 = pts.iter().find(|p| p.0 == "soft" && p.1 == 64).unwrap().2;
        assert!(soft64 > 3.0 * soft1, "{soft1} vs {soft64}");
    }

    #[test]
    fn qsort_tree_quick_rows() {
        let pts = qsort_tree_depth(true);
        assert_eq!(pts.len(), 3);
        assert!(pts.iter().all(|p| p.1 > 0.0 && p.2 > 0.0));
    }

    #[test]
    fn tsu_groups_scaling_is_within_a_few_percent() {
        let pts = tsu_groups_scaling(true);
        assert_eq!(pts[0].0, 1);
        let base = pts[0].1 as f64;
        for (g, cycles, _) in &pts[1..] {
            let delta = (*cycles as f64 - base).abs() / base;
            assert!(delta < 0.05, "groups={g}: delta {delta}");
        }
    }

    #[test]
    fn tsu_group_ablation_returns_both_configs() {
        let rows = tsu_group_ablation(true);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.1 > 0));
    }

    #[test]
    fn tsu_latency_quick_shape() {
        let pts = tsu_latency(true);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].0, 1);
        assert_eq!(pts[1].0, 128);
        assert!(pts[1].2 < 0.01, "TSU latency impact {}", pts[1].2);
    }
}
