//! Plain-text rendering of figure rows: grouped per benchmark, one line
//! per kernel count, one column per size class — the same arrangement as
//! the paper's bar charts.

use crate::figures::FigRow;
use std::fmt::Write as _;

/// Render rows as the paper's figure layout.
pub fn render_figure(title: &str, rows: &[FigRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== {title} ==");
    let _ = writeln!(
        s,
        "{:<8} {:>7} {:>10} {:>10} {:>10}   {:>9} {:>6}",
        "Bench", "Kernels", "Small", "Medium", "Large", "coh-miss%", "util%"
    );
    let benches: Vec<&str> = {
        let mut v = Vec::new();
        for r in rows {
            if !v.contains(&r.bench) {
                v.push(r.bench);
            }
        }
        v
    };
    for bench in benches {
        let mut kernels: Vec<u32> = rows
            .iter()
            .filter(|r| r.bench == bench)
            .map(|r| r.kernels)
            .collect();
        kernels.sort_unstable();
        kernels.dedup();
        for k in kernels {
            let cell = |size: &str| -> Option<&FigRow> {
                rows.iter()
                    .find(|r| r.bench == bench && r.kernels == k && r.size == size)
            };
            let fmt = |r: Option<&FigRow>| match r {
                Some(r) => format!("{:.1}", r.speedup),
                None => "-".to_string(),
            };
            // annotate with the largest-size point's diagnostics
            let diag = cell("Large").or(cell("Medium")).or(cell("Small"));
            let _ = writeln!(
                s,
                "{:<8} {:>7} {:>10} {:>10} {:>10}   {:>9} {:>6}",
                bench,
                k,
                fmt(cell("Small")),
                fmt(cell("Medium")),
                fmt(cell("Large")),
                diag.map(|r| format!("{:.1}", r.coherency_ratio * 100.0))
                    .unwrap_or_default(),
                diag.map(|r| format!("{:.0}", r.utilization * 100.0))
                    .unwrap_or_default(),
            );
        }
        let _ = writeln!(s);
    }
    s
}

/// Average speedup of the largest kernel configuration (the paper's
/// headline numbers: 21x at 27 nodes hard, 4.4x at 6 nodes soft/cell).
pub fn headline(rows: &[FigRow], kernels: u32, size: &str) -> f64 {
    let pts: Vec<f64> = rows
        .iter()
        .filter(|r| r.kernels == kernels && r.size == size)
        .map(|r| r.speedup)
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    pts.iter().sum::<f64>() / pts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(bench: &'static str, size: &'static str, kernels: u32, speedup: f64) -> FigRow {
        FigRow {
            bench,
            size,
            kernels,
            speedup,
            coherency_ratio: 0.01,
            utilization: 0.9,
        }
    }

    #[test]
    fn renders_grid() {
        let rows = vec![
            row("TRAPEZ", "Small", 2, 2.0),
            row("TRAPEZ", "Large", 2, 2.0),
            row("TRAPEZ", "Small", 4, 3.9),
        ];
        let s = render_figure("Figure X", &rows);
        assert!(s.contains("Figure X"));
        assert!(s.contains("TRAPEZ"));
        assert!(s.contains("3.9"));
        assert!(s.contains('-'), "missing sizes render as dashes");
    }

    #[test]
    fn headline_averages_selected_points() {
        let rows = vec![
            row("A", "Large", 27, 20.0),
            row("B", "Large", 27, 22.0),
            row("A", "Large", 2, 2.0),
        ];
        assert_eq!(headline(&rows, 27, "Large"), 21.0);
        assert_eq!(headline(&rows, 16, "Large"), 0.0);
    }
}
