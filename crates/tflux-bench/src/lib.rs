//! # tflux-bench — the figure and table harness
//!
//! One function per artifact of the paper's evaluation section; the
//! `figures` binary prints them in the paper's row format and
//! `EXPERIMENTS.md` records paper-vs-measured. All performance numbers
//! come from the deterministic simulators (see DESIGN.md §1 for why), so
//! every row is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod json;
pub mod render;
pub mod tsu_path;

pub use figures::{
    calibrate_soft_overhead, fig5, fig5_x86, fig6, fig7, qsort_tree_depth, table1_text,
    tsu_group_ablation, tsu_groups_scaling, tsu_latency, unroll_study, FigRow,
};
