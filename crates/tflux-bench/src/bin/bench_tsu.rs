//! Measure the TSU completion hot path and write `BENCH_tsu.json` at the
//! workspace root: the serialized single-drainer baseline (the pre-split
//! emulator model, one thread performing every ready-count update), the
//! lock-free direct-update path (one completing thread per kernel,
//! `fetch_sub` on atomic ready-count slots), and the locked-shard
//! reference (the PR 2 `Mutex<HashMap>` interior, kept in
//! `tsu_path::locked`) on the same host.
//!
//! ```sh
//! cargo run --release -p tflux-bench --bin bench_tsu            # write BENCH_tsu.json
//! cargo run --release -p tflux-bench --bin bench_tsu -- --check # CI smoke
//! ```
//!
//! `--check` writes nothing: it measures the lock-free and locked paths at
//! the widest kernel count and exits non-zero if the lock-free table is
//! slower than the locked baseline — the regression gate the CI bench
//! smoke job runs.

use serde::Serialize;
use tflux_bench::tsu_path::{armed, complete_interleaved, locked, measure, pipeline, reduction};

const ARITY: u32 = 4096;
const KERNELS: [u32; 4] = [1, 2, 4, 8];
const WARMUP: usize = 2;
const RUNS: usize = 7;
/// Completions per funnel flush in the reduction scenario.
const FUNNEL_BATCH: usize = 8;

#[derive(Serialize)]
struct Row {
    path: &'static str,
    kernels: u32,
    ns_total: u64,
    ns_per_completion: f64,
    completions_per_sec: f64,
}

#[derive(Serialize)]
struct Speedup {
    kernels: u32,
    lockfree_over_serialized: f64,
    lockfree_over_locked: f64,
}

/// One funnel-on vs funnel-off comparison on the reduction scenario.
/// The counters are deterministic (the driver interleaves round-robin);
/// only the wall-clock fields vary between hosts.
#[derive(Serialize)]
struct FunnelRow {
    kernels: u32,
    batch: usize,
    ns_funnel_off: u64,
    ns_funnel_on: u64,
    contended_off: u64,
    contended_on: u64,
    contended_ratio: f64,
    rc_rmws_off: u64,
    rc_rmws_on: u64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    regenerate: &'static str,
    host_threads: usize,
    arity: u32,
    rows: Vec<Row>,
    speedups: Vec<Speedup>,
    funnel: Vec<FunnelRow>,
}

/// Best-of-`RUNS` after warmup: the completion path is short enough that
/// the minimum is the least noisy central estimate.
fn best(program: &tflux_core::DdmProgram, kernels: u32, sharded: bool) -> u64 {
    for _ in 0..WARMUP {
        measure(program, kernels, sharded);
    }
    (0..RUNS)
        .map(|_| measure(program, kernels, sharded))
        .min()
        .unwrap()
}

/// Best-of-`RUNS` through the locked-shard reference.
fn best_locked(program: &tflux_core::DdmProgram, kernels: u32) -> u64 {
    for _ in 0..WARMUP {
        locked::measure(program, kernels);
    }
    (0..RUNS)
        .map(|_| locked::measure(program, kernels))
        .min()
        .unwrap()
}

fn row(path: &'static str, kernels: u32, ns_total: u64) -> Row {
    let n = ARITY as f64;
    Row {
        path,
        kernels,
        ns_total,
        ns_per_completion: ns_total as f64 / n,
        completions_per_sec: n / (ns_total as f64 / 1e9),
    }
}

/// One funnel-off vs funnel-on measurement of the reduction scenario:
/// deterministic round-robin interleaving, best-of-`RUNS` wall clock.
fn funnel_row(kernels: u32) -> FunnelRow {
    let program = reduction(ARITY);
    let run = |batch: usize| {
        let mut best_ns = u64::MAX;
        let mut stats = None;
        for i in 0..WARMUP + RUNS {
            let (sm, work) = armed(&program, kernels);
            let ns = complete_interleaved(&sm, &work, kernels, batch);
            if i >= WARMUP {
                best_ns = best_ns.min(ns);
            }
            stats = Some(sm.stats());
        }
        (best_ns, stats.unwrap())
    };
    let (ns_off, off) = run(1);
    let (ns_on, on) = run(FUNNEL_BATCH);
    assert_eq!(on.rc_updates, off.rc_updates, "batching lost decrements");
    FunnelRow {
        kernels,
        batch: FUNNEL_BATCH,
        ns_funnel_off: ns_off,
        ns_funnel_on: ns_on,
        contended_off: off.sm_contended,
        contended_on: on.sm_contended,
        contended_ratio: off.sm_contended as f64 / on.sm_contended.max(1) as f64,
        rc_rmws_off: off.rc_rmws,
        rc_rmws_on: on.rc_rmws,
    }
}

/// The CI smoke: fail if the lock-free table is slower than the locked
/// baseline at the widest kernel count, or if the completion funnel cuts
/// sink-line transfers by less than 1.5x on the reduction scenario.
fn check() -> ! {
    let program = pipeline(ARITY);
    let k = *KERNELS.last().unwrap();
    let lockfree = best(&program, k, true);
    let locked_ns = best_locked(&program, k);
    let ratio = locked_ns as f64 / lockfree as f64;
    println!(
        "bench_tsu --check at {k} kernels: lock-free {lockfree} ns, \
         locked {locked_ns} ns, speedup {ratio:.2}x"
    );
    if lockfree > locked_ns {
        eprintln!("FAIL: lock-free completion path is slower than the locked baseline");
        std::process::exit(1);
    }
    let f = funnel_row(k);
    println!(
        "bench_tsu --check funnel at {k} kernels: contended off {} vs on {} \
         ({:.2}x), rc RMWs off {} vs on {}",
        f.contended_off, f.contended_on, f.contended_ratio, f.rc_rmws_off, f.rc_rmws_on
    );
    if f.contended_ratio < 1.5 {
        eprintln!("FAIL: completion funnel cuts line transfers by less than 1.5x");
        std::process::exit(1);
    }
    println!("OK: lock-free path and completion funnel hold their ratios");
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check();
    }
    let program = pipeline(ARITY);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &k in &KERNELS {
        let serial = best(&program, k, false);
        rows.push(row("serialized_single_drainer", k, serial));
        if k > 1 {
            let lockfree = best(&program, k, true);
            let locked_ns = best_locked(&program, k);
            rows.push(row("lockfree_direct_update", k, lockfree));
            rows.push(row("locked_shard_reference", k, locked_ns));
            speedups.push(Speedup {
                kernels: k,
                lockfree_over_serialized: serial as f64 / lockfree as f64,
                lockfree_over_locked: locked_ns as f64 / lockfree as f64,
            });
        }
    }
    let funnel = KERNELS
        .iter()
        .filter(|&&k| k > 1)
        .map(|&k| funnel_row(k))
        .collect();
    let report = Report {
        bench: "tsu_completion_path",
        regenerate: "cargo run --release -p tflux-bench --bin bench_tsu",
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        arity: ARITY,
        rows,
        speedups,
        funnel,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tsu.json");
    std::fs::write(path, json + "\n").expect("write BENCH_tsu.json");
    println!("wrote {path}");
    for s in std::fs::read_to_string(path).unwrap().lines() {
        println!("{s}");
    }
}
