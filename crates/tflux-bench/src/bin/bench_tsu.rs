//! Measure the TSU completion hot path and write `BENCH_tsu.json` at the
//! workspace root: the serialized single-drainer baseline (the pre-split
//! emulator model, one thread performing every ready-count update) vs the
//! sharded direct-update path (one completing thread per kernel, updates
//! landing on per-kernel Synchronization Memory shards).
//!
//! ```sh
//! cargo run --release -p tflux-bench --bin bench_tsu
//! ```

use serde::Serialize;
use tflux_bench::tsu_path::{measure, pipeline};

const ARITY: u32 = 4096;
const KERNELS: [u32; 4] = [1, 2, 4, 8];
const WARMUP: usize = 2;
const RUNS: usize = 7;

#[derive(Serialize)]
struct Row {
    path: &'static str,
    kernels: u32,
    ns_total: u64,
    ns_per_completion: f64,
    completions_per_sec: f64,
}

#[derive(Serialize)]
struct Speedup {
    kernels: u32,
    sharded_over_serialized: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    regenerate: &'static str,
    host_threads: usize,
    arity: u32,
    rows: Vec<Row>,
    speedups: Vec<Speedup>,
}

/// Best-of-`RUNS` after warmup: the completion path is short enough that
/// the minimum is the least noisy central estimate.
fn best(program: &tflux_core::DdmProgram, kernels: u32, sharded: bool) -> u64 {
    for _ in 0..WARMUP {
        measure(program, kernels, sharded);
    }
    (0..RUNS)
        .map(|_| measure(program, kernels, sharded))
        .min()
        .unwrap()
}

fn row(path: &'static str, kernels: u32, ns_total: u64) -> Row {
    let n = ARITY as f64;
    Row {
        path,
        kernels,
        ns_total,
        ns_per_completion: ns_total as f64 / n,
        completions_per_sec: n / (ns_total as f64 / 1e9),
    }
}

fn main() {
    let program = pipeline(ARITY);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &k in &KERNELS {
        let serial = best(&program, k, false);
        rows.push(row("serialized_single_drainer", k, serial));
        if k > 1 {
            let sharded = best(&program, k, true);
            rows.push(row("sharded_direct_update", k, sharded));
            speedups.push(Speedup {
                kernels: k,
                sharded_over_serialized: serial as f64 / sharded as f64,
            });
        }
    }
    let report = Report {
        bench: "tsu_completion_path",
        regenerate: "cargo run --release -p tflux-bench --bin bench_tsu",
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        arity: ARITY,
        rows,
        speedups,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tsu.json");
    std::fs::write(path, json + "\n").expect("write BENCH_tsu.json");
    println!("wrote {path}");
    for s in std::fs::read_to_string(path).unwrap().lines() {
        println!("{s}");
    }
}
