//! Measure the TSU completion hot path and write `BENCH_tsu.json` at the
//! workspace root: the serialized single-drainer baseline (the pre-split
//! emulator model, one thread performing every ready-count update), the
//! lock-free direct-update path (one completing thread per kernel,
//! `fetch_sub` on atomic ready-count slots), and the locked-shard
//! reference (the PR 2 `Mutex<HashMap>` interior, kept in
//! `tsu_path::locked`) on the same host.
//!
//! ```sh
//! cargo run --release -p tflux-bench --bin bench_tsu            # write BENCH_tsu.json
//! cargo run --release -p tflux-bench --bin bench_tsu -- --check # CI smoke
//! ```
//!
//! `--check` writes nothing: it measures the lock-free and locked paths at
//! the widest kernel count and exits non-zero if the lock-free table is
//! slower than the locked baseline — the regression gate the CI bench
//! smoke job runs.

use serde::Serialize;
use tflux_bench::tsu_path::{locked, measure, pipeline};

const ARITY: u32 = 4096;
const KERNELS: [u32; 4] = [1, 2, 4, 8];
const WARMUP: usize = 2;
const RUNS: usize = 7;

#[derive(Serialize)]
struct Row {
    path: &'static str,
    kernels: u32,
    ns_total: u64,
    ns_per_completion: f64,
    completions_per_sec: f64,
}

#[derive(Serialize)]
struct Speedup {
    kernels: u32,
    lockfree_over_serialized: f64,
    lockfree_over_locked: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    regenerate: &'static str,
    host_threads: usize,
    arity: u32,
    rows: Vec<Row>,
    speedups: Vec<Speedup>,
}

/// Best-of-`RUNS` after warmup: the completion path is short enough that
/// the minimum is the least noisy central estimate.
fn best(program: &tflux_core::DdmProgram, kernels: u32, sharded: bool) -> u64 {
    for _ in 0..WARMUP {
        measure(program, kernels, sharded);
    }
    (0..RUNS)
        .map(|_| measure(program, kernels, sharded))
        .min()
        .unwrap()
}

/// Best-of-`RUNS` through the locked-shard reference.
fn best_locked(program: &tflux_core::DdmProgram, kernels: u32) -> u64 {
    for _ in 0..WARMUP {
        locked::measure(program, kernels);
    }
    (0..RUNS)
        .map(|_| locked::measure(program, kernels))
        .min()
        .unwrap()
}

fn row(path: &'static str, kernels: u32, ns_total: u64) -> Row {
    let n = ARITY as f64;
    Row {
        path,
        kernels,
        ns_total,
        ns_per_completion: ns_total as f64 / n,
        completions_per_sec: n / (ns_total as f64 / 1e9),
    }
}

/// The CI smoke: fail if the lock-free table is slower than the locked
/// baseline at the widest kernel count.
fn check() -> ! {
    let program = pipeline(ARITY);
    let k = *KERNELS.last().unwrap();
    let lockfree = best(&program, k, true);
    let locked_ns = best_locked(&program, k);
    let ratio = locked_ns as f64 / lockfree as f64;
    println!(
        "bench_tsu --check at {k} kernels: lock-free {lockfree} ns, \
         locked {locked_ns} ns, speedup {ratio:.2}x"
    );
    if lockfree > locked_ns {
        eprintln!("FAIL: lock-free completion path is slower than the locked baseline");
        std::process::exit(1);
    }
    println!("OK: lock-free path at or above locked-baseline throughput");
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check();
    }
    let program = pipeline(ARITY);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &k in &KERNELS {
        let serial = best(&program, k, false);
        rows.push(row("serialized_single_drainer", k, serial));
        if k > 1 {
            let lockfree = best(&program, k, true);
            let locked_ns = best_locked(&program, k);
            rows.push(row("lockfree_direct_update", k, lockfree));
            rows.push(row("locked_shard_reference", k, locked_ns));
            speedups.push(Speedup {
                kernels: k,
                lockfree_over_serialized: serial as f64 / lockfree as f64,
                lockfree_over_locked: locked_ns as f64 / lockfree as f64,
            });
        }
    }
    let report = Report {
        bench: "tsu_completion_path",
        regenerate: "cargo run --release -p tflux-bench --bin bench_tsu",
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        arity: ARITY,
        rows,
        speedups,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tsu.json");
    std::fs::write(path, json + "\n").expect("write BENCH_tsu.json");
    println!("wrote {path}");
    for s in std::fs::read_to_string(path).unwrap().lines() {
        println!("{s}");
    }
}
