//! Measure the TSU completion hot path and write `BENCH_tsu.json` at the
//! workspace root: the serialized single-drainer baseline (the pre-split
//! emulator model, one thread performing every ready-count update), the
//! lock-free direct-update path (one completing thread per kernel,
//! `fetch_sub` on atomic ready-count slots), and the locked-shard
//! reference (the PR 2 `Mutex<HashMap>` interior, kept in
//! `tsu_path::locked`) on the same host.
//!
//! ```sh
//! cargo run --release -p tflux-bench --bin bench_tsu            # write BENCH_tsu.json
//! cargo run --release -p tflux-bench --bin bench_tsu -- --check # CI smoke
//! ```
//!
//! `--check` writes nothing: it is the regression gate the CI bench smoke
//! job runs. Every pass/fail verdict keys on *deterministic* quantities —
//! shard counters, simulated cycles, the 64-core NUMA scaling floors and
//! the sharded-vs-global DES equivalence — so the gate's outcome is
//! identical on any host. The one wall-clock comparison (lock-free vs
//! locked) only gates when the host can actually run the paths in
//! parallel; on a 1-thread host it prints a structured `SKIP` line with
//! the reason instead of failing on scheduler noise.

use tflux_bench::json::{Json, ToJson};
use tflux_bench::tsu_path::{
    armed, balanced_fanout, complete_interleaved, imbalanced_fanout, locked, measure,
    measure_stream, pipeline, reduction, sim_makespan, sim_scaling, sim_throughput,
};
use tflux_sim::{DesEngine, MachineConfig};
use tflux_workloads::Bench;

const ARITY: u32 = 4096;
const KERNELS: [u32; 4] = [1, 2, 4, 8];
const WARMUP: usize = 2;
const RUNS: usize = 7;
/// Completions per funnel flush in the reduction scenario.
const FUNNEL_BATCH: usize = 8;
/// Consecutive passes per context in the streaming scenario.
const STREAM_EPOCHS: u64 = 8;
/// Fanout width of the work-stealing scenarios (simulated, so it need
/// not match the wall-clock `ARITY`).
const STEAL_ARITY: u32 = 256;
/// Uniform compute cycles per instance in the steal scenarios.
const STEAL_WORK: u64 = 200;

struct Row {
    path: &'static str,
    kernels: u32,
    ns_total: u64,
    ns_per_completion: f64,
    completions_per_sec: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("path", self.path.to_json()),
            ("kernels", self.kernels.to_json()),
            ("ns_total", self.ns_total.to_json()),
            ("ns_per_completion", self.ns_per_completion.to_json()),
            ("completions_per_sec", self.completions_per_sec.to_json()),
        ])
    }
}

struct Speedup {
    kernels: u32,
    lockfree_over_serialized: f64,
    lockfree_over_locked: f64,
}

impl ToJson for Speedup {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kernels", self.kernels.to_json()),
            (
                "lockfree_over_serialized",
                self.lockfree_over_serialized.to_json(),
            ),
            ("lockfree_over_locked", self.lockfree_over_locked.to_json()),
        ])
    }
}

/// One funnel-on vs funnel-off comparison on the reduction scenario.
/// The counters are deterministic (the driver interleaves round-robin);
/// only the wall-clock fields vary between hosts.
struct FunnelRow {
    kernels: u32,
    batch: usize,
    ns_funnel_off: u64,
    ns_funnel_on: u64,
    contended_off: u64,
    contended_on: u64,
    contended_ratio: f64,
    rc_rmws_off: u64,
    rc_rmws_on: u64,
}

impl ToJson for FunnelRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kernels", self.kernels.to_json()),
            ("batch", self.batch.to_json()),
            ("ns_funnel_off", self.ns_funnel_off.to_json()),
            ("ns_funnel_on", self.ns_funnel_on.to_json()),
            ("contended_off", self.contended_off.to_json()),
            ("contended_on", self.contended_on.to_json()),
            ("contended_ratio", self.contended_ratio.to_json()),
            ("rc_rmws_off", self.rc_rmws_off.to_json()),
            ("rc_rmws_on", self.rc_rmws_on.to_json()),
        ])
    }
}

/// One sustained-throughput streaming measurement: `epochs` consecutive
/// passes through one windowed SyncMemory, context slots re-armed in
/// place at every wrap. The wrap columns price the epoch turnaround
/// (`retire_epoch` + `open_epoch`) against the steady-state completion
/// work it buys.
struct StreamRow {
    kernels: u32,
    epochs: u64,
    ns_total: u64,
    completions: u64,
    completions_per_sec: f64,
    wrap_ns_per_epoch: f64,
    wrap_fraction: f64,
}

impl ToJson for StreamRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kernels", self.kernels.to_json()),
            ("epochs", self.epochs.to_json()),
            ("ns_total", self.ns_total.to_json()),
            ("completions", self.completions.to_json()),
            ("completions_per_sec", self.completions_per_sec.to_json()),
            ("wrap_ns_per_epoch", self.wrap_ns_per_epoch.to_json()),
            ("wrap_fraction", self.wrap_fraction.to_json()),
        ])
    }
}

/// One work-stealing comparison: the same fanout simulated with stealing
/// on and off. Simulated cycles — fully deterministic, identical on any
/// host (unlike the wall-clock rows).
struct StealRow {
    scenario: &'static str,
    cores: u32,
    cycles_steal_on: u64,
    cycles_steal_off: u64,
    speedup: f64,
    steals: u64,
    steal_misses: u64,
    stolen_fetches: u64,
}

impl ToJson for StealRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.to_json()),
            ("cores", self.cores.to_json()),
            ("cycles_steal_on", self.cycles_steal_on.to_json()),
            ("cycles_steal_off", self.cycles_steal_off.to_json()),
            ("speedup", self.speedup.to_json()),
            ("steals", self.steals.to_json()),
            ("steal_misses", self.steal_misses.to_json()),
            ("stolen_fetches", self.stolen_fetches.to_json()),
        ])
    }
}

/// One simulated-cycle scaling row: a full workload on a machine preset,
/// speedup over the zero-overhead sequential baseline on the same
/// machine. Host-independent — these are the rows `--check` gates on,
/// because they cannot be perturbed by how many host threads the runner
/// happens to have.
struct ScalingRow {
    topology: &'static str,
    bench: &'static str,
    cores: u32,
    engine: &'static str,
    sim_cycles: u64,
    seq_cycles: u64,
    speedup: f64,
    remote_node: u64,
    channel_wait: u64,
    steals: u64,
}

impl ToJson for ScalingRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("topology", self.topology.to_json()),
            ("bench", self.bench.to_json()),
            ("cores", self.cores.to_json()),
            ("engine", self.engine.to_json()),
            ("sim_cycles", self.sim_cycles.to_json()),
            ("seq_cycles", self.seq_cycles.to_json()),
            ("speedup", self.speedup.to_json()),
            ("remote_node", self.remote_node.to_json()),
            ("channel_wait", self.channel_wait.to_json()),
            ("steals", self.steals.to_json()),
        ])
    }
}

/// One host-scaling throughput row: the sparc_t3_4(64) trapez simulation
/// on `host_threads` host workers. `events_per_sec` and
/// `sim_mcycles_per_sec` are wall-clock rates (host-dependent);
/// `sim_cycles` is simulated and must match at every thread count —
/// that equality is what `--check` gates on everywhere, while the
/// wall-clock `speedup_vs_1` gate arms only on truly parallel hosts.
struct SimThroughputRow {
    host_threads: u32,
    ns_total: u64,
    events: u64,
    sim_cycles: u64,
    events_per_sec: f64,
    sim_mcycles_per_sec: f64,
    speedup_vs_1: f64,
}

impl ToJson for SimThroughputRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("host_threads", self.host_threads.to_json()),
            ("ns_total", self.ns_total.to_json()),
            ("events", self.events.to_json()),
            ("sim_cycles", self.sim_cycles.to_json()),
            ("events_per_sec", self.events_per_sec.to_json()),
            ("sim_mcycles_per_sec", self.sim_mcycles_per_sec.to_json()),
            ("speedup_vs_1", self.speedup_vs_1.to_json()),
        ])
    }
}

/// Host-thread counts the throughput sweep covers.
const SIM_HOST_THREADS: [u32; 3] = [1, 2, 4];
/// Wall-clock repeats per throughput point (best-of).
const SIM_THROUGHPUT_RUNS: usize = 3;

/// Sweep the sparc_t3_4(64) trapez simulation across host-thread counts.
/// The simulated outputs are asserted identical inside `sim_throughput`;
/// the rows record how fast the host retires them.
fn sim_throughput_rows() -> Vec<SimThroughputRow> {
    let t3 = MachineConfig::sparc_t3_4(64).expect("64 kernels fit the T3-4");
    let points: Vec<_> = SIM_HOST_THREADS
        .iter()
        .map(|&n| sim_throughput(Bench::Trapez, t3, n, SIM_THROUGHPUT_RUNS))
        .collect();
    let base_ns = points[0].ns_total;
    points
        .into_iter()
        .map(|m| SimThroughputRow {
            host_threads: m.host_threads,
            ns_total: m.ns_total,
            events: m.events,
            sim_cycles: m.sim_cycles,
            events_per_sec: m.events_per_sec(),
            sim_mcycles_per_sec: m.sim_mcycles_per_sec(),
            speedup_vs_1: base_ns as f64 / m.ns_total.max(1) as f64,
        })
        .collect()
}

struct Report {
    bench: &'static str,
    regenerate: &'static str,
    host_threads: usize,
    wall_clock_note: &'static str,
    arity: u32,
    rows: Vec<Row>,
    speedups: Vec<Speedup>,
    funnel: Vec<FunnelRow>,
    streaming: Vec<StreamRow>,
    steal: Vec<StealRow>,
    scaling: Vec<ScalingRow>,
    sim_throughput: Vec<SimThroughputRow>,
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::obj([
            ("bench", self.bench.to_json()),
            ("regenerate", self.regenerate.to_json()),
            ("host_threads", self.host_threads.to_json()),
            ("wall_clock_note", self.wall_clock_note.to_json()),
            ("arity", self.arity.to_json()),
            ("rows", self.rows.to_json()),
            ("speedups", self.speedups.to_json()),
            ("funnel", self.funnel.to_json()),
            ("streaming", self.streaming.to_json()),
            ("steal", self.steal.to_json()),
            ("scaling", self.scaling.to_json()),
            ("sim_throughput", self.sim_throughput.to_json()),
        ])
    }
}

/// The ns_* fields of `rows`/`speedups`/`funnel`/`streaming` are wall
/// clock and depend on `host_threads`; `steal` and `scaling` are
/// simulated cycles, identical on any host.
const WALL_CLOCK_NOTE: &str = "rows/speedups/funnel/streaming ns fields and the sim_throughput \
     rates are wall clock and vary with host_threads; steal, scaling, and the sim_cycles/events \
     columns of sim_throughput are simulated, host-independent";

/// Machine presets the scaling section sweeps: the paper's flat UMA
/// board and the 64-core 4-node NUMA part.
fn scaling_machines() -> [(&'static str, MachineConfig); 2] {
    [
        ("bagle", MachineConfig::bagle(8)),
        (
            "sparc_t3_4",
            MachineConfig::sparc_t3_4(64).expect("64 kernels fit the T3-4"),
        ),
    ]
}

fn scaling_row(topology: &'static str, bench: Bench, cfg: MachineConfig) -> ScalingRow {
    let m = sim_scaling(bench, cfg, DesEngine::Sharded);
    ScalingRow {
        topology,
        bench: bench.name(),
        cores: cfg.cores,
        engine: "sharded",
        sim_cycles: m.sim_cycles,
        seq_cycles: m.seq_cycles,
        speedup: m.speedup,
        remote_node: m.remote_node,
        channel_wait: m.channel_wait,
        steals: m.steals,
    }
}

/// Best-of-`RUNS` after warmup: the completion path is short enough that
/// the minimum is the least noisy central estimate.
fn best(program: &tflux_core::DdmProgram, kernels: u32, sharded: bool) -> u64 {
    for _ in 0..WARMUP {
        measure(program, kernels, sharded);
    }
    (0..RUNS)
        .map(|_| measure(program, kernels, sharded))
        .min()
        .unwrap()
}

/// Best-of-`RUNS` through the locked-shard reference.
fn best_locked(program: &tflux_core::DdmProgram, kernels: u32) -> u64 {
    for _ in 0..WARMUP {
        locked::measure(program, kernels);
    }
    (0..RUNS)
        .map(|_| locked::measure(program, kernels))
        .min()
        .unwrap()
}

fn row(path: &'static str, kernels: u32, ns_total: u64) -> Row {
    let n = ARITY as f64;
    Row {
        path,
        kernels,
        ns_total,
        ns_per_completion: ns_total as f64 / n,
        completions_per_sec: n / (ns_total as f64 / 1e9),
    }
}

/// One funnel-off vs funnel-on measurement of the reduction scenario:
/// deterministic round-robin interleaving, best-of-`RUNS` wall clock.
fn funnel_row(kernels: u32) -> FunnelRow {
    let program = reduction(ARITY);
    let run = |batch: usize| {
        let mut best_ns = u64::MAX;
        let mut stats = None;
        for i in 0..WARMUP + RUNS {
            let (sm, work) = armed(&program, kernels);
            let ns = complete_interleaved(&sm, &work, kernels, batch);
            if i >= WARMUP {
                best_ns = best_ns.min(ns);
            }
            stats = Some(sm.stats());
        }
        (best_ns, stats.unwrap())
    };
    let (ns_off, off) = run(1);
    let (ns_on, on) = run(FUNNEL_BATCH);
    assert_eq!(on.rc_updates, off.rc_updates, "batching lost decrements");
    FunnelRow {
        kernels,
        batch: FUNNEL_BATCH,
        ns_funnel_off: ns_off,
        ns_funnel_on: ns_on,
        contended_off: off.sm_contended,
        contended_on: on.sm_contended,
        contended_ratio: off.sm_contended as f64 / on.sm_contended.max(1) as f64,
        rc_rmws_off: off.rc_rmws,
        rc_rmws_on: on.rc_rmws,
    }
}

/// Best-of-`RUNS` sustained streaming measurement. Correctness (exact
/// completion counts, epoch-ordered dispatch) is asserted inside
/// `measure_stream` on every run, warmup included.
fn stream_row(kernels: u32) -> StreamRow {
    let program = pipeline(ARITY);
    let mut best: Option<tflux_bench::tsu_path::StreamMeasure> = None;
    for i in 0..WARMUP + RUNS {
        let m = measure_stream(&program, kernels, STREAM_EPOCHS);
        if i >= WARMUP && best.is_none_or(|b| m.ns_total < b.ns_total) {
            best = Some(m);
        }
    }
    let m = best.unwrap();
    StreamRow {
        kernels,
        epochs: m.epochs,
        ns_total: m.ns_total,
        completions: m.completions,
        completions_per_sec: m.completions_per_sec(),
        wrap_ns_per_epoch: m.wrap_ns_per_epoch(),
        wrap_fraction: m.wrap_fraction(),
    }
}

/// One steal-on vs steal-off comparison at `cores` cores (simulated).
fn steal_row(scenario: &'static str, program: &tflux_core::DdmProgram, cores: u32) -> StealRow {
    let on = sim_makespan(program, cores, true, STEAL_WORK);
    let off = sim_makespan(program, cores, false, STEAL_WORK);
    StealRow {
        scenario,
        cores,
        cycles_steal_on: on.cycles,
        cycles_steal_off: off.cycles,
        speedup: off.cycles as f64 / on.cycles.max(1) as f64,
        steals: on.steals,
        steal_misses: on.steal_misses,
        stolen_fetches: on.stolen_fetches,
    }
}

/// Emit a structured skip record for a gate that cannot run honestly on
/// this host. One line, machine-parseable, with the reason attached —
/// CI logs show *why* the gate did not run instead of a silent pass or
/// a noise-driven failure.
fn skip_gate(gate: &str, reason: &str) {
    println!("SKIP {{\"gate\":\"{gate}\",\"reason\":\"{reason}\"}}");
}

/// The CI smoke. Deterministic simulated-cycle gates always run: the
/// funnel line-transfer cut, streaming epoch progress, the work-stealing
/// makespans, the 64-core NUMA scaling floors, and the sharded-vs-global
/// DES equivalence. Wall-clock gates (lock-free vs locked) additionally
/// require real host parallelism — on a 1-thread host the two paths
/// measure scheduler noise, not the completion path, so the gate emits a
/// structured skip instead of a coin-flip verdict.
fn check() -> ! {
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let program = pipeline(ARITY);
    let k = *KERNELS.last().unwrap();
    let lockfree = best(&program, k, true);
    let locked_ns = best_locked(&program, k);
    let ratio = locked_ns as f64 / lockfree as f64;
    println!(
        "bench_tsu --check at {k} kernels: lock-free {lockfree} ns, \
         locked {locked_ns} ns, speedup {ratio:.2}x (host_threads {host_threads}, \
         wall clock, informational unless host_threads > 1)"
    );
    if host_threads <= 1 {
        skip_gate(
            "lockfree_over_locked",
            "wall-clock comparison of concurrent completion paths needs host_threads > 1; \
             this host serializes both and measures scheduler noise",
        );
    } else if lockfree > locked_ns {
        eprintln!("FAIL: lock-free completion path is slower than the locked baseline");
        std::process::exit(1);
    }
    let f = funnel_row(k);
    println!(
        "bench_tsu --check funnel at {k} kernels: contended off {} vs on {} \
         ({:.2}x), rc RMWs off {} vs on {}",
        f.contended_off, f.contended_on, f.contended_ratio, f.rc_rmws_off, f.rc_rmws_on
    );
    if f.contended_ratio < 1.5 {
        eprintln!("FAIL: completion funnel cuts line transfers by less than 1.5x");
        std::process::exit(1);
    }
    // streaming gate: the windowed SyncMemory must sustain at least 3
    // consecutive epochs per context slot with exact completion counts
    // (measure_stream asserts the counts and the per-dispatch epoch
    // internally) and without the wraps dominating the stream
    let s = measure_stream(&pipeline(ARITY), k, 3);
    println!(
        "bench_tsu --check streaming at {k} kernels: {} epochs, {:.0} completions/s, \
         wrap {:.0} ns/epoch ({:.2}% of wall clock)",
        s.epochs,
        s.completions_per_sec(),
        s.wrap_ns_per_epoch(),
        100.0 * s.wrap_fraction()
    );
    if s.epochs < 3 {
        eprintln!("FAIL: streaming did not sustain 3 consecutive epochs");
        std::process::exit(1);
    }
    if s.wrap_fraction() > 0.5 {
        eprintln!("FAIL: epoch wraparound dominates the stream");
        std::process::exit(1);
    }
    // work-stealing gates: simulated cycles, so the comparison is exact
    // and host-independent
    let imb = steal_row("imbalanced_fanout", &imbalanced_fanout(STEAL_ARITY), k);
    println!(
        "bench_tsu --check steal (imbalanced) at {k} cores: on {} vs off {} cycles \
         ({:.2}x, {} steals, {} misses)",
        imb.cycles_steal_on, imb.cycles_steal_off, imb.speedup, imb.steals, imb.steal_misses
    );
    if imb.speedup < 1.2 {
        eprintln!("FAIL: work-stealing does not beat no-steal FIFO on the imbalanced fanout");
        std::process::exit(1);
    }
    let bal = steal_row("balanced_fanout", &balanced_fanout(STEAL_ARITY), k);
    println!(
        "bench_tsu --check steal (balanced) at {k} cores: on {} vs off {} cycles ({:.2}x)",
        bal.cycles_steal_on, bal.cycles_steal_off, bal.speedup
    );
    let (lo, hi) = (
        bal.cycles_steal_on.min(bal.cycles_steal_off),
        bal.cycles_steal_on.max(bal.cycles_steal_off),
    );
    if hi * 100 > lo * 105 {
        eprintln!("FAIL: stealing perturbs the balanced fanout by more than 5%");
        std::process::exit(1);
    }
    // 64-core NUMA scaling gates: simulated cycles on the T3-4 preset,
    // so the thresholds hold on any host. The sharded DES engine must
    // also reproduce the global heap cycle-for-cycle on the same run —
    // the cheap cross-check backing the full equivalence suite.
    let t3 = MachineConfig::sparc_t3_4(64).expect("64 kernels fit the T3-4");
    let sharded = sim_scaling(Bench::Trapez, t3, DesEngine::Sharded);
    let global = sim_scaling(Bench::Trapez, t3, DesEngine::Global);
    println!(
        "bench_tsu --check scaling (trapez, sparc_t3_4 x64): {} cycles vs {} sequential \
         ({:.1}x speedup, {} remote-node transfers, {} channel-wait cycles)",
        sharded.sim_cycles,
        sharded.seq_cycles,
        sharded.speedup,
        sharded.remote_node,
        sharded.channel_wait
    );
    if sharded.sim_cycles != global.sim_cycles {
        eprintln!(
            "FAIL: sharded DES engine diverged from the global heap: {} vs {} cycles",
            sharded.sim_cycles, global.sim_cycles
        );
        std::process::exit(1);
    }
    if sharded.speedup < 16.0 {
        eprintln!(
            "FAIL: 64-core T3-4 speedup {:.1}x is below the 16x floor",
            sharded.speedup
        );
        std::process::exit(1);
    }
    if sharded.remote_node == 0 {
        eprintln!("FAIL: 64-core T3-4 run paid no cross-node transfers — NUMA model inert");
        std::process::exit(1);
    }
    let bagle = sim_scaling(Bench::Trapez, MachineConfig::bagle(8), DesEngine::Sharded);
    println!(
        "bench_tsu --check scaling (trapez, bagle x8): {:.1}x speedup",
        bagle.speedup
    );
    if bagle.speedup < 4.0 {
        eprintln!(
            "FAIL: 8-core Bagle speedup {:.1}x is below the 4x floor",
            bagle.speedup
        );
        std::process::exit(1);
    }
    // host-scaling gates: the simulated side (event counts and makespan
    // identical at every host-thread count) is deterministic and always
    // gates; the wall-clock side (parallel commit must actually run
    // faster) only means something when the host has ≥ 4 hardware
    // threads to run the domain workers on
    let tput = sim_throughput_rows();
    for r in &tput {
        println!(
            "bench_tsu --check sim_throughput (trapez, sparc_t3_4 x64) at {} host \
             threads: {:.0} events/s, {:.2} sim Mcycles/s, {:.2}x vs 1 thread",
            r.host_threads, r.events_per_sec, r.sim_mcycles_per_sec, r.speedup_vs_1
        );
    }
    if tput
        .iter()
        .any(|r| r.sim_cycles != tput[0].sim_cycles || r.events != tput[0].events)
    {
        eprintln!("FAIL: simulated outputs changed with the host-thread count");
        std::process::exit(1);
    }
    let at4 = tput
        .iter()
        .find(|r| r.host_threads == 4)
        .expect("sweep covers 4 host threads");
    if host_threads < 4 {
        skip_gate(
            "sim_host_scaling",
            "wall-clock speedup of the parallel DES commit needs >= 4 hardware threads; \
             this host would time oversubscription, not parallelism",
        );
    } else if at4.speedup_vs_1 < 1.8 {
        eprintln!(
            "FAIL: parallel DES commit at 4 host threads is only {:.2}x over 1 thread \
             (floor 1.8x)",
            at4.speedup_vs_1
        );
        std::process::exit(1);
    }
    println!(
        "OK: completion funnel, epoch streaming, work-stealing, and 64-core \
         simulated scaling hold (gates are host-independent simulated cycles)"
    );
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check();
    }
    let program = pipeline(ARITY);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &k in &KERNELS {
        let serial = best(&program, k, false);
        rows.push(row("serialized_single_drainer", k, serial));
        if k > 1 {
            let lockfree = best(&program, k, true);
            let locked_ns = best_locked(&program, k);
            rows.push(row("lockfree_direct_update", k, lockfree));
            rows.push(row("locked_shard_reference", k, locked_ns));
            speedups.push(Speedup {
                kernels: k,
                lockfree_over_serialized: serial as f64 / lockfree as f64,
                lockfree_over_locked: locked_ns as f64 / lockfree as f64,
            });
        }
    }
    let funnel = KERNELS
        .iter()
        .filter(|&&k| k > 1)
        .map(|&k| funnel_row(k))
        .collect();
    let streaming = KERNELS.iter().map(|&k| stream_row(k)).collect();
    let steal = KERNELS
        .iter()
        .filter(|&&k| k > 1)
        .flat_map(|&k| {
            [
                steal_row("imbalanced_fanout", &imbalanced_fanout(STEAL_ARITY), k),
                steal_row("balanced_fanout", &balanced_fanout(STEAL_ARITY), k),
            ]
        })
        .collect();
    let scaling = scaling_machines()
        .into_iter()
        .flat_map(|(name, cfg)| Bench::ALL.map(|b| scaling_row(name, b, cfg)))
        .collect();
    let sim_throughput = sim_throughput_rows();
    let report = Report {
        bench: "tsu_completion_path",
        regenerate: "cargo run --release -p tflux-bench --bin bench_tsu",
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        wall_clock_note: WALL_CLOCK_NOTE,
        arity: ARITY,
        rows,
        speedups,
        funnel,
        streaming,
        steal,
        scaling,
        sim_throughput,
    };
    let json = report.to_json().pretty();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tsu.json");
    std::fs::write(path, json).expect("write BENCH_tsu.json");
    println!("wrote {path}");
    for s in std::fs::read_to_string(path).unwrap().lines() {
        println!("{s}");
    }
}
