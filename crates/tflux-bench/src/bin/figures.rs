//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [--quick] table1|fig5|fig6|fig7|tsu-latency|unroll|tsu-group|all
//! ```
//!
//! Run with `--release`; the full Figure 5 sweep simulates hundreds of
//! millions of cache accesses.

use std::process::ExitCode;
use tflux_bench::figures;
use tflux_bench::render::{headline, render_figure};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let what = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .map(String::as_str)
        .unwrap_or("all");

    if json {
        // machine-readable output for the speedup figures
        let rows = match what {
            "fig5" => figures::fig5(quick),
            "fig6" => figures::fig6(quick),
            "fig7" => figures::fig7(quick),
            other => {
                eprintln!("--json supports fig5|fig6|fig7, not `{other}`");
                return ExitCode::from(2);
            }
        };
        print!("{}", tflux_bench::json::ToJson::to_json(&rows).pretty());
        return ExitCode::SUCCESS;
    }

    let t0 = std::time::Instant::now();
    match what {
        "table1" => print!("{}", figures::table1_text()),
        "fig5" => fig5(quick),
        "fig6" => fig6(quick),
        "fig7" => fig7(quick),
        "tsu-latency" => tsu_latency(quick),
        "unroll" => unroll(quick),
        "tsu-group" => tsu_group(quick),
        "tsu-groups-scale" => tsu_groups_scale(quick),
        "qsort-tree" => qsort_tree(quick),
        "calibrate" => calibrate(),
        "fig5-x86" => fig5_x86(quick),
        "all" => {
            print!("{}", figures::table1_text());
            println!();
            fig5(quick);
            fig6(quick);
            fig7(quick);
            tsu_latency(quick);
            unroll(quick);
            tsu_group(quick);
            tsu_groups_scale(quick);
            qsort_tree(quick);
            calibrate();
            fig5_x86(quick);
        }
        other => {
            eprintln!(
                "unknown artifact `{other}`; expected table1|fig5|fig6|fig7|tsu-latency|unroll|tsu-group|tsu-groups-scale|qsort-tree|calibrate|fig5-x86|all"
            );
            return ExitCode::from(2);
        }
    }
    eprintln!("[figures: {what} in {:.1?}]", t0.elapsed());
    ExitCode::SUCCESS
}

fn fig5(quick: bool) {
    let rows = figures::fig5(quick);
    print!(
        "{}",
        render_figure("Figure 5: TFluxHard speedup (hardware TSU, Bagle)", &rows)
    );
    println!(
        "average speedup at 27 kernels, Large: {:.1}x (paper: 21x)\n",
        headline(&rows, 27, if quick { "Small" } else { "Large" })
    );
}

fn fig6(quick: bool) {
    let rows = figures::fig6(quick);
    print!(
        "{}",
        render_figure(
            "Figure 6: TFluxSoft speedup (software TSU, Xeon model)",
            &rows
        )
    );
    println!(
        "average speedup at 6 kernels, Large: {:.1}x (paper: ~4.4x)\n",
        headline(&rows, 6, if quick { "Small" } else { "Large" })
    );
}

fn fig7(quick: bool) {
    let rows = figures::fig7(quick);
    print!(
        "{}",
        render_figure("Figure 7: TFluxCell speedup (PS3 model)", &rows)
    );
    println!(
        "average speedup at 6 SPEs, Large: {:.1}x (paper: ~4.4x avg over soft+cell)\n",
        headline(&rows, 6, if quick { "Small" } else { "Large" })
    );
}

fn tsu_latency(quick: bool) {
    println!("== §4.1: TSU processing-time sensitivity (MMULT, 8 kernels) ==");
    println!("{:>10} {:>14} {:>8}", "op-cycles", "exec cycles", "delta");
    for (op, cycles, delta) in figures::tsu_latency(quick) {
        println!("{op:>10} {cycles:>14} {:>7.2}%", delta * 100.0);
    }
    println!("paper: <1% impact from 1 to 128 cycles\n");
}

fn unroll(quick: bool) {
    println!("== §5/§6: unroll-factor study (MMULT Small) ==");
    println!("{:>8} {:>8} {:>8}", "platform", "unroll", "speedup");
    for (platform, u, s) in figures::unroll_study(quick) {
        println!("{platform:>8} {u:>8} {s:>8.2}");
    }
    println!("paper: hard peaks at unroll 2-4; soft needs >16; cell needs 64 (MMULT)\n");
}

fn fig5_x86(quick: bool) {
    println!("== §6.1.2 cross-check: 9-core x86 vs Bagle (8 kernels) ==");
    println!("{:<8} {:>8} {:>8}", "Bench", "x86", "Bagle");
    for (bench, x86, bagle) in tflux_bench::figures::fig5_x86(quick) {
        println!("{bench:<8} {x86:>7.1}x {bagle:>7.1}x");
    }
    println!("paper: \"speedup values observed and conclusions drawn are similar\"\n");
}

fn calibrate() {
    println!("== calibration: native per-DThread overhead vs the soft-TSU model ==");
    let ghz = 2.33; // the paper's Xeon E5320 clock
    let (ns, cycles, modeled) = tflux_bench::figures::calibrate_soft_overhead(ghz);
    println!("this runtime, this host : {ns:.0} ns/DThread ({cycles} cycles at {ghz} GHz)");
    println!("paper-2008 cost model   : {modeled} cycles/DThread (2*access + 2*op + kernel)");
    println!("the Fig. 6 model is calibrated to the paper's 2008 pthread runtime;");
    println!("this Rust runtime's transition path is considerably cheaper\n");
}

fn qsort_tree(quick: bool) {
    println!("== §6.1.2: QSORT merge-tree depth (27 kernels) ==");
    println!("{:>6} {:>10} {:>10}", "depth", "Small", "Large");
    for (d, small, large) in tflux_bench::figures::qsort_tree_depth(quick) {
        println!("{d:>6} {small:>10.2} {large:>10.2}");
    }
    println!("paper: shipped depth 2; deeper trees trade steps for parallelism\n");
}

fn tsu_groups_scale(quick: bool) {
    println!("== §3.3 extension: multiple TSU Groups (27 kernels, fine-grain MMULT) ==");
    println!("{:>8} {:>14} {:>14}", "groups", "cycles", "cross-updates");
    for (g, cycles, cross) in tflux_bench::figures::tsu_groups_scaling(quick) {
        println!("{g:>8} {cycles:>14} {cross:>14}");
    }
    println!();
}

fn tsu_group(quick: bool) {
    println!("== §3.3: TSU Group vs per-CPU TSUs (MMULT, 8 kernels) ==");
    for (label, cycles) in figures::tsu_group_ablation(quick) {
        println!("{label:<28} {cycles:>14} cycles");
    }
    println!();
}
