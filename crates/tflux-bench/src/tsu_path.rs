//! The TSU fetch/complete hot path, isolated for measurement.
//!
//! Before the TSU decomposition, every App completion funneled through
//! the single TSU-owner thread (the TFluxSoft emulator): kernels published
//! instance ids and one thread performed all ready-count updates. After
//! the split, kernels call [`SyncMemory::complete`] themselves; the
//! ready counts now live in a lock-free table of atomic slots. This module
//! builds the paths on the *same* `SyncMemory` so the criterion bench
//! (`benches/tsu_path.rs`) and the `bench_tsu` binary (which writes
//! `BENCH_tsu.json`) compare exactly the completion work, with no body
//! execution or queue noise. The [`locked`] submodule preserves the
//! locked-shard interior (`Mutex<HashMap>` per kernel) as a host-portable
//! reference, so one run can report the lock-free vs locked ratio on the
//! same machine — and CI can fail if the lock-free path ever regresses
//! below it (`bench_tsu --check`).

use std::time::Instant;
use tflux_core::ids::Epoch;
use tflux_core::prelude::*;
use tflux_core::tsu::SyncMemory;

/// A two-stage `OneToOne` pipeline of `arity` instances per stage.
///
/// Every `produce[i]` completion decrements `consume[i]`'s ready count
/// through the shard of `consume[i]`'s owning kernel, so with the range
/// partition the update traffic of different kernels lands on different
/// shards — the case the sharding is designed for. The final reduction
/// into `sink` is *not* part of the measured set; it is the funnel case
/// the per-shard `contended` counter diagnoses at run time.
pub fn pipeline(arity: u32) -> DdmProgram {
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let produce = b.thread(blk, ThreadSpec::new("produce", arity));
    let consume = b.thread(blk, ThreadSpec::new("consume", arity));
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(produce, consume, ArcMapping::OneToOne).unwrap();
    b.arc(consume, sink, ArcMapping::Reduction).unwrap();
    b.build().unwrap()
}

/// A Synchronization Memory with the block loaded and every first-stage
/// instance dispatched; returns the instances whose completions are the
/// measured work. The measured pass is epoch 0, so completers hand back
/// `Epoch(0)` tokens.
pub fn armed(program: &DdmProgram, kernels: u32) -> (SyncMemory<&DdmProgram>, Vec<Instance>) {
    let sm = SyncMemory::new(program, kernels, 0);
    let mut ready = Vec::new();
    let inlet = sm.armed_inlet();
    let ep = sm.dispatch(inlet).expect("inlet dispatch");
    sm.complete(inlet, ep, &mut ready)
        .expect("inlet completion");
    // the block is loaded; `ready` holds the zero-ready-count first stage
    let work = ready.clone();
    for &i in &work {
        sm.dispatch(i).expect("work dispatch");
    }
    (sm, work)
}

/// The epoch token of the one-shot measured pass.
const E0: Epoch = Epoch(0);

/// Complete every instance from one thread — the pre-split model where a
/// single TSU owner performs all ready-count updates.
pub fn complete_serialized(sm: &SyncMemory<&DdmProgram>, work: &[Instance]) {
    let mut out = Vec::new();
    for &i in work {
        sm.complete(i, E0, &mut out).expect("serialized completion");
    }
}

/// Complete the instances from `kernels` threads, each completing the
/// instances it owns — the sharded direct-update path of the threaded
/// runtime.
pub fn complete_sharded(sm: &SyncMemory<&DdmProgram>, work: &[Instance], kernels: u32) {
    let gm = sm.graph();
    std::thread::scope(|s| {
        for k in 0..kernels {
            let mine: Vec<Instance> = work
                .iter()
                .copied()
                .filter(|&i| gm.owner_of(i) == KernelId(k))
                .collect();
            s.spawn(move || {
                let mut out = Vec::new();
                for i in mine {
                    sm.complete(i, E0, &mut out).expect("sharded completion");
                }
            });
        }
    });
}

/// Nanoseconds to complete all first-stage instances of `program`, setup
/// excluded. `sharded = false` runs the single-drainer baseline.
pub fn measure(program: &DdmProgram, kernels: u32, sharded: bool) -> u64 {
    let (sm, work) = armed(program, kernels);
    let t = Instant::now();
    if sharded {
        complete_sharded(&sm, &work, kernels);
    } else {
        complete_serialized(&sm, &work);
    }
    let ns = t.elapsed().as_nanos() as u64;
    assert_eq!(
        sm.completions() as usize,
        work.len() + 1,
        "lost completions"
    );
    ns
}

/// A wide fan-in: every one of `arity` producers feeds the same scalar
/// sink through a `Reduction` arc — the hot-sink case the completion
/// funnel exists for. Every producer completion decrements the *same*
/// two slots (sink and outlet), so with K kernels completing in an
/// interleaved order those cache lines transfer between kernels on
/// nearly every update.
pub fn reduction(arity: u32) -> DdmProgram {
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::new("work", arity));
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(work, sink, ArcMapping::Reduction).unwrap();
    b.build().unwrap()
}

/// Complete `work` in a deterministic round-robin over the kernels,
/// `batch` completions per turn (1 = the direct path, one RMW pair per
/// completion; >1 = the funnel path, one `complete_batch` per turn).
/// The round-robin is the adversarial interleaving: consecutive updates
/// of the sink's slot come from different kernels, so the `contended`
/// line-transfer counter records the ping-pong the funnel eliminates.
/// Returns elapsed nanoseconds; read `sm.stats()` for the counters.
pub fn complete_interleaved(
    sm: &SyncMemory<&DdmProgram>,
    work: &[Instance],
    kernels: u32,
    batch: usize,
) -> u64 {
    let gm = sm.graph();
    let mut by_k: Vec<Vec<Instance>> = vec![Vec::new(); kernels as usize];
    for &i in work {
        by_k[gm.owner_of(i).idx()].push(i);
    }
    let batch = batch.max(1);
    let mut out = Vec::new();
    let mut cursor = vec![0usize; kernels as usize];
    let mut remaining = work.len();
    let t = Instant::now();
    while remaining > 0 {
        for k in 0..kernels as usize {
            let c = cursor[k];
            if c >= by_k[k].len() {
                continue;
            }
            let hi = (c + batch).min(by_k[k].len());
            if batch == 1 {
                sm.complete(by_k[k][c], E0, &mut out)
                    .expect("direct completion");
            } else {
                sm.complete_batch(&by_k[k][c..hi], E0, &mut out)
                    .expect("batched completion");
            }
            cursor[k] = hi;
            remaining -= hi - c;
        }
    }
    t.elapsed().as_nanos() as u64
}

/// The outcome of a sustained streaming run: `epochs` consecutive passes
/// of the same program through one windowed [`SyncMemory`], each pass
/// re-using the context slots the previous pass just vacated.
#[derive(Debug, Clone, Copy)]
pub struct StreamMeasure {
    /// Wall-clock nanoseconds for the whole stream, wraps included.
    pub ns_total: u64,
    /// Completions processed across all passes (incl. inlets/outlets).
    pub completions: u64,
    /// Passes driven to the outlet.
    pub epochs: u64,
    /// Nanoseconds spent inside the epoch wraps themselves — the
    /// `retire_epoch` + `open_epoch` pair that hands the drained pass's
    /// credit back and re-arms every context slot for the next pass.
    pub wrap_ns: u64,
}

impl StreamMeasure {
    /// Steady-state completion throughput over the whole stream.
    pub fn completions_per_sec(&self) -> f64 {
        self.completions as f64 / (self.ns_total.max(1) as f64 / 1e9)
    }

    /// Average nanoseconds per epoch wrap (0 for a single pass).
    pub fn wrap_ns_per_epoch(&self) -> f64 {
        if self.epochs <= 1 {
            0.0
        } else {
            self.wrap_ns as f64 / (self.epochs - 1) as f64
        }
    }

    /// Fraction of the stream's wall clock spent wrapping epochs.
    pub fn wrap_fraction(&self) -> f64 {
        self.wrap_ns as f64 / self.ns_total.max(1) as f64
    }
}

/// Drive `epochs` consecutive passes of `program` through one windowed
/// `SyncMemory` and measure steady-state throughput plus the wraparound
/// overhead. Each pass is drained by a dependency-order worklist (no
/// queue or body noise, same as the one-shot scenarios); between passes
/// the drained epoch is retired and the next one opened, which re-arms
/// every context slot in place. Panics on any protocol error — a stale
/// token or a corrupted ready count cannot pass silently.
pub fn measure_stream(program: &DdmProgram, kernels: u32, epochs: u64) -> StreamMeasure {
    let sm = SyncMemory::with_window(program, kernels, 0, 2);
    let per_pass = program.total_instances() as u64;
    let mut frontier = vec![sm.armed_inlet()];
    let mut out = Vec::new();
    let mut wrap_ns = 0u64;
    let t = Instant::now();
    for e in 0..epochs {
        while let Some(i) = frontier.pop() {
            let ep = sm.dispatch(i).expect("stream dispatch");
            assert_eq!(ep.0, e, "instance dispatched under the wrong epoch");
            sm.complete(i, ep, &mut out).expect("stream completion");
            frontier.append(&mut out);
        }
        assert!(sm.finished(), "pass did not drain");
        if e + 1 < epochs {
            let w = Instant::now();
            sm.retire_epoch(Epoch(e)).expect("retire drained epoch");
            sm.open_epoch(&mut frontier).expect("open next epoch");
            wrap_ns += w.elapsed().as_nanos() as u64;
        }
    }
    let ns_total = t.elapsed().as_nanos() as u64;
    sm.retire_epoch(Epoch(epochs - 1))
        .expect("retire final epoch");
    let measured = StreamMeasure {
        ns_total,
        completions: sm.completions(),
        epochs,
        wrap_ns,
    };
    assert_eq!(
        measured.completions,
        epochs * per_pass,
        "cross-epoch ready-count corruption: completions diverged"
    );
    measured
}

/// Imbalanced fanout: every `work` instance is pinned to kernel 0 — one
/// producer kernel, N−1 consumers with empty local queues. Without
/// stealing, core 0 drains the whole stage serially while the others
/// park; with stealing, the idle cores take the oldest entries from
/// kernel 0's deque. The makespan gap between the two is the value of
/// the work-stealing layer, and it is measured in *simulated* cycles
/// ([`sim_makespan`]) so the comparison is deterministic and
/// host-independent.
pub fn imbalanced_fanout(arity: u32) -> DdmProgram {
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(
        blk,
        ThreadSpec::new("work", arity).with_affinity(Affinity::Fixed(KernelId(0))),
    );
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(work, sink, ArcMapping::Reduction).unwrap();
    b.build().unwrap()
}

/// The same fanout shape, range-partitioned across kernels — the control
/// scenario: each kernel owns an equal slice, so stealing has (almost)
/// nothing to move and must not slow the balanced case down.
pub fn balanced_fanout(arity: u32) -> DdmProgram {
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::new("work", arity));
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(work, sink, ArcMapping::Reduction).unwrap();
    b.build().unwrap()
}

/// One deterministic steal measurement: simulated makespan plus the
/// steal counters of the run.
#[derive(Debug, Clone, Copy)]
pub struct StealMeasure {
    /// Simulated makespan in cycles (last core's finish time).
    pub cycles: u64,
    /// Successful steals (entries executed away from their owner).
    pub steals: u64,
    /// Victim probes that found the victim empty.
    pub steal_misses: u64,
    /// Fetches the TSU device served by walking a sibling queue (each
    /// charged [`tflux_sim::TsuCosts::steal`] extra cycles).
    pub stolen_fetches: u64,
}

/// Run `program` on the simulated Bagle machine with `cores` cores and
/// `work_cycles` of uniform compute per instance, stealing on or off.
/// Fully deterministic: same inputs, same cycle count, any host.
pub fn sim_makespan(
    program: &DdmProgram,
    cores: u32,
    steal: bool,
    work_cycles: u64,
) -> StealMeasure {
    use tflux_core::tsu::TsuConfig;
    use tflux_sim::work::UniformWork;
    use tflux_sim::{Machine, MachineConfig};
    let r = Machine::new(MachineConfig::bagle(cores))
        .with_tsu_config(TsuConfig {
            policy: SchedulingPolicy::LocalityFirst { steal },
            ..TsuConfig::default()
        })
        .run(
            program,
            &UniformWork {
                cycles: work_cycles,
            },
        )
        .expect("sim run");
    StealMeasure {
        cycles: r.cycles,
        steals: r.tsu.steals,
        steal_misses: r.tsu.steal_misses,
        stolen_fetches: r.dev.stolen_fetches,
    }
}

/// One simulated scaling point: a full workload run on a machine preset,
/// priced against the zero-overhead sequential baseline on the *same*
/// machine. All fields are simulated — identical on any host, any
/// `host_threads`, so `bench_tsu --check` can gate on them without
/// caring how parallel the CI runner happens to be.
#[derive(Debug, Clone, Copy)]
pub struct ScalingMeasure {
    /// Parallel makespan in simulated cycles.
    pub sim_cycles: u64,
    /// Sequential zero-overhead baseline on the same machine, in cycles.
    pub seq_cycles: u64,
    /// `seq_cycles / sim_cycles` — the paper's speedup metric.
    pub speedup: f64,
    /// Cross-NUMA-node transfers observed (0 on flat topologies).
    pub remote_node: u64,
    /// Cycles spent queued on saturated node memory channels.
    pub channel_wait: u64,
    /// Successful steals during the parallel run.
    pub steals: u64,
}

/// Run `bench` at `Small` size with one kernel per core of `cfg` and
/// report the simulated speedup over the sequential baseline. `engine`
/// selects the DES engine — `Sharded` is what the 64-core rows use, and
/// the equivalence suite holds it cycle-identical to `Global`.
pub fn sim_scaling(
    bench: tflux_workloads::Bench,
    cfg: tflux_sim::MachineConfig,
    engine: tflux_sim::DesEngine,
) -> ScalingMeasure {
    use tflux_workloads::common::Params;
    use tflux_workloads::setup::{sim_baseline, sim_setup, with_default_unroll};
    use tflux_workloads::sizes::SizeClass;
    let p = with_default_unroll(bench, Params::hard(cfg.cores, 0, SizeClass::Small));
    let machine = tflux_sim::Machine::new(cfg).with_engine(engine);
    let (prog, src) = sim_setup(bench, &p);
    let (sprog, ssrc) = sim_baseline(bench, &p);
    let seq = machine.run_sequential(&sprog, ssrc.as_ref());
    let par = machine.run(&prog, src.as_ref()).expect("sim run");
    ScalingMeasure {
        sim_cycles: par.cycles,
        seq_cycles: seq.cycles,
        speedup: par.speedup_over(&seq),
        remote_node: par.mem.remote_node,
        channel_wait: par.mem.channel_wait,
        steals: par.tsu.steals,
    }
}

/// One host-scaling throughput point: the same simulation run on a given
/// number of host worker threads. `events` and `sim_cycles` are simulated
/// quantities and must be identical at every `host_threads` (the parallel
/// engine is cycle-exact); only `ns_total` is wall clock.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputMeasure {
    /// Host worker threads the sharded engine committed rounds on.
    pub host_threads: u32,
    /// Best-of-runs wall-clock time for one full simulation, nanoseconds.
    pub ns_total: u64,
    /// Discrete events processed (queue pops + replayed device ops).
    pub events: u64,
    /// Simulated makespan in cycles.
    pub sim_cycles: u64,
}

impl ThroughputMeasure {
    /// Host-side event throughput.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.ns_total as f64 / 1e9)
    }

    /// Simulated megacycles retired per wall-clock second.
    pub fn sim_mcycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / 1e6 / (self.ns_total as f64 / 1e9)
    }
}

/// Time `bench` on the sharded DES engine at `host_threads` host workers:
/// best-of-`runs` wall clock around `Machine::run`, with the simulated
/// outputs asserted identical across every repeat (the determinism the
/// equivalence suite proves, cross-checked here on the bench path).
pub fn sim_throughput(
    bench: tflux_workloads::Bench,
    cfg: tflux_sim::MachineConfig,
    host_threads: u32,
    runs: usize,
) -> ThroughputMeasure {
    use tflux_workloads::common::Params;
    use tflux_workloads::setup::{sim_setup, with_default_unroll};
    use tflux_workloads::sizes::SizeClass;
    // Medium: long enough that one run amortizes per-round worker
    // dispatch, so the wall clock prices the commit machinery and not
    // the timer
    let p = with_default_unroll(bench, Params::hard(cfg.cores, 0, SizeClass::Medium));
    let (prog, src) = sim_setup(bench, &p);
    let machine = tflux_sim::Machine::new(cfg)
        .with_engine(tflux_sim::DesEngine::Sharded)
        .with_host_threads(host_threads);
    let mut best: Option<ThroughputMeasure> = None;
    for _ in 0..runs.max(1) {
        let t = std::time::Instant::now();
        let r = machine.run(&prog, src.as_ref()).expect("sim run");
        let ns_total = t.elapsed().as_nanos() as u64;
        if let Some(b) = best {
            assert_eq!(b.events, r.events, "host_threads changed the event count");
            assert_eq!(b.sim_cycles, r.cycles, "host_threads changed the makespan");
        }
        if best.is_none_or(|b| ns_total < b.ns_total) {
            best = Some(ThroughputMeasure {
                host_threads,
                ns_total,
                events: r.events,
                sim_cycles: r.cycles,
            });
        }
    }
    best.unwrap()
}

/// The PR 2 locked-shard Synchronization Memory interior, preserved as a
/// measurement reference: per-kernel `Mutex<HashMap>` shards, `try_lock`
/// first. No runtime uses it — it exists so `bench_tsu` can compare the
/// lock-free table against the locked baseline on the same host, and so
/// `bench_tsu --check` can fail CI if the lock-free path regresses.
pub mod locked {
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, PoisonError, TryLockError};
    use tflux_core::prelude::*;
    use tflux_core::thread::ThreadKind;
    use tflux_core::tsu::GraphMemory;

    #[derive(Default)]
    struct ShardInner {
        rc: HashMap<Instance, u32>,
        running: HashSet<Instance>,
    }

    /// The locked reference Synchronization Memory. Only the operations
    /// the completion-path measurement needs: arm, dispatch, complete.
    pub struct LockedSm<'p> {
        gm: GraphMemory<&'p DdmProgram>,
        shards: Vec<Mutex<ShardInner>>,
        completions: AtomicU64,
    }

    impl<'p> LockedSm<'p> {
        /// Build and arm: the first block's inlet is made resident.
        pub fn new(program: &'p DdmProgram, kernels: u32) -> Self {
            let gm = GraphMemory::new(program, kernels);
            let sm = LockedSm {
                gm,
                shards: (0..kernels).map(|_| Mutex::default()).collect(),
                completions: AtomicU64::new(0),
            };
            sm.mark_resident(gm.first_inlet().thread);
            sm
        }

        /// The armed first-block inlet.
        pub fn armed_inlet(&self) -> Instance {
            self.gm.first_inlet()
        }

        /// Completions processed so far.
        pub fn completions(&self) -> u64 {
            self.completions.load(Ordering::Relaxed)
        }

        fn lock(&self, i: Instance) -> std::sync::MutexGuard<'_, ShardInner> {
            let shard = &self.shards[self.gm.owner_of(i).idx()];
            match shard.try_lock() {
                Ok(g) => g,
                Err(TryLockError::WouldBlock) => {
                    shard.lock().unwrap_or_else(PoisonError::into_inner)
                }
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
            }
        }

        fn mark_resident(&self, t: ThreadId) {
            let rcs = self.gm.program().initial_rcs(t);
            for (c, &rc) in rcs.iter().enumerate() {
                let i = Instance::new(t, Context(c as u32));
                self.lock(i).rc.insert(i, rc);
            }
        }

        /// Mark `inst` dispatched (no residency validation — faithful to
        /// the pre-fix behaviour this reference preserves).
        pub fn dispatch(&self, inst: Instance) {
            self.lock(inst).running.insert(inst);
        }

        /// Locked-shard completion: Inlet loads the block, App runs the
        /// Post-Processing Phase through the consumer shards' locks.
        pub fn complete(&self, inst: Instance, out: &mut Vec<Instance>) {
            out.clear();
            let t = inst.thread;
            assert!(self.lock(inst).running.remove(&inst), "not running");
            self.completions.fetch_add(1, Ordering::Relaxed);
            match self.gm.kind(t) {
                ThreadKind::Inlet => {
                    let b = self.gm.block_of(t);
                    let block = &self.gm.program().blocks()[b.idx()];
                    for &at in &block.threads {
                        self.mark_resident(at);
                        for (c, &rc) in self.gm.program().initial_rcs(at).iter().enumerate() {
                            if rc == 0 {
                                out.push(Instance::new(at, Context(c as u32)));
                            }
                        }
                    }
                    self.mark_resident(block.outlet);
                }
                ThreadKind::Outlet => {}
                ThreadKind::App => {
                    let pa = self.gm.program().thread(t).arity;
                    for arc in self.gm.consumers(t) {
                        let ca = self.gm.program().thread(arc.consumer).arity;
                        for c in arc.mapping.consumers(inst.context, pa, ca) {
                            let ci = Instance::new(arc.consumer, c);
                            let mut inner = self.lock(ci);
                            let rc = inner.rc.get_mut(&ci).expect("consumer resident");
                            *rc -= 1;
                            if *rc == 0 {
                                out.push(ci);
                            }
                        }
                    }
                }
            }
        }
    }

    /// A locked SM with the block loaded and the first stage dispatched.
    pub fn armed(program: &DdmProgram, kernels: u32) -> (LockedSm<'_>, Vec<Instance>) {
        let sm = LockedSm::new(program, kernels);
        let mut ready = Vec::new();
        let inlet = sm.armed_inlet();
        sm.dispatch(inlet);
        sm.complete(inlet, &mut ready);
        let work = ready.clone();
        for &i in &work {
            sm.dispatch(i);
        }
        (sm, work)
    }

    /// Complete the instances from `kernels` threads — the same driver as
    /// [`complete_sharded`](super::complete_sharded), against the locked
    /// reference.
    pub fn complete_sharded(sm: &LockedSm<'_>, work: &[Instance], kernels: u32) {
        let gm = sm.gm;
        std::thread::scope(|s| {
            for k in 0..kernels {
                let mine: Vec<Instance> = work
                    .iter()
                    .copied()
                    .filter(|&i| gm.owner_of(i) == KernelId(k))
                    .collect();
                s.spawn(move || {
                    let mut out = Vec::new();
                    for i in mine {
                        sm.complete(i, &mut out);
                    }
                });
            }
        });
    }

    /// Nanoseconds to complete all first-stage instances through the
    /// locked reference with `kernels` completing threads.
    pub fn measure(program: &DdmProgram, kernels: u32) -> u64 {
        let (sm, work) = armed(program, kernels);
        let t = std::time::Instant::now();
        complete_sharded(&sm, &work, kernels);
        let ns = t.elapsed().as_nanos() as u64;
        assert_eq!(
            sm.completions() as usize,
            work.len() + 1,
            "lost completions"
        );
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_complete_every_instance() {
        let p = pipeline(64);
        let (sm, work) = armed(&p, 4);
        assert_eq!(work.len(), 64);
        complete_serialized(&sm, &work);
        assert_eq!(sm.completions(), 65); // inlet + 64

        let (sm, work) = armed(&p, 4);
        complete_sharded(&sm, &work, 4);
        assert_eq!(sm.completions(), 65);
        // every update went through a shard
        let updates: u64 = sm.shard_stats().iter().map(|s| s.rc_updates).sum();
        assert_eq!(updates, sm.stats().rc_updates);
    }

    #[test]
    fn measure_reports_nonzero_time() {
        let p = pipeline(128);
        assert!(measure(&p, 1, false) > 0);
        assert!(measure(&p, 2, true) > 0);
    }

    #[test]
    fn funnel_batches_cut_line_transfers() {
        let p = reduction(64);
        let (sm, work) = armed(&p, 4);
        complete_interleaved(&sm, &work, 4, 1);
        let off = sm.stats();
        let (sm, work) = armed(&p, 4);
        complete_interleaved(&sm, &work, 4, 8);
        let on = sm.stats();
        // identical logical work, far fewer RMWs and line transfers
        assert_eq!(on.rc_updates, off.rc_updates);
        assert_eq!(on.completions, off.completions);
        assert!(
            on.rc_rmws < off.rc_rmws,
            "{} !< {}",
            on.rc_rmws,
            off.rc_rmws
        );
        assert!(
            off.sm_contended as f64 >= 1.5 * on.sm_contended as f64,
            "funnel must cut line transfers ≥1.5x: off {} vs on {}",
            off.sm_contended,
            on.sm_contended
        );
    }

    #[test]
    fn stream_sustains_consecutive_epochs() {
        let p = pipeline(64);
        let m = measure_stream(&p, 4, 4);
        assert_eq!(m.epochs, 4);
        assert_eq!(m.completions, 4 * p.total_instances() as u64);
        assert!(m.completions_per_sec() > 0.0);
        assert!(m.wrap_ns_per_epoch() >= 0.0);
        assert!(m.wrap_fraction() < 1.0);
    }

    #[test]
    fn stealing_beats_no_steal_on_the_imbalanced_fanout() {
        let p = imbalanced_fanout(64);
        let on = sim_makespan(&p, 4, true, 200);
        let off = sim_makespan(&p, 4, false, 200);
        assert!(
            on.cycles * 12 < off.cycles * 10,
            "stealing must beat no-steal by >1.2x on the pinned fanout: \
             on {} vs off {}",
            on.cycles,
            off.cycles
        );
        assert!(on.steals > 0 && on.stolen_fetches > 0);
        assert_eq!(off.steals, 0);
    }

    #[test]
    fn stealing_is_noise_on_the_balanced_fanout() {
        let p = balanced_fanout(64);
        let on = sim_makespan(&p, 4, true, 200);
        let off = sim_makespan(&p, 4, false, 200);
        let (lo, hi) = (on.cycles.min(off.cycles), on.cycles.max(off.cycles));
        assert!(
            hi * 100 <= lo * 105,
            "balanced makespans must agree within 5%: on {} vs off {}",
            on.cycles,
            off.cycles
        );
    }

    #[test]
    fn locked_reference_completes_every_instance() {
        let p = pipeline(64);
        let (sm, work) = locked::armed(&p, 4);
        assert_eq!(work.len(), 64);
        locked::complete_sharded(&sm, &work, 4);
        assert_eq!(sm.completions(), 65); // inlet + 64
        assert!(locked::measure(&p, 2) > 0);
    }
}
