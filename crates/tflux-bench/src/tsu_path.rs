//! The TSU fetch/complete hot path, isolated for measurement.
//!
//! Before the TSU decomposition, every App completion funneled through
//! the single TSU-owner thread (the TFluxSoft emulator): kernels published
//! instance ids and one thread performed all ready-count updates. After
//! the split, kernels call [`SyncMemory::complete`] themselves and the
//! updates land on per-kernel shards. This module builds the two paths on
//! the *same* `SyncMemory` so the criterion bench (`benches/tsu_path.rs`)
//! and the `bench_tsu` binary (which writes `BENCH_tsu.json`) compare
//! exactly the completion work, with no body execution or queue noise.

use std::time::Instant;
use tflux_core::prelude::*;
use tflux_core::tsu::SyncMemory;

/// A two-stage `OneToOne` pipeline of `arity` instances per stage.
///
/// Every `produce[i]` completion decrements `consume[i]`'s ready count
/// through the shard of `consume[i]`'s owning kernel, so with the range
/// partition the update traffic of different kernels lands on different
/// shards — the case the sharding is designed for. The final reduction
/// into `sink` is *not* part of the measured set; it is the funnel case
/// the per-shard `contended` counter diagnoses at run time.
pub fn pipeline(arity: u32) -> DdmProgram {
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let produce = b.thread(blk, ThreadSpec::new("produce", arity));
    let consume = b.thread(blk, ThreadSpec::new("consume", arity));
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(produce, consume, ArcMapping::OneToOne).unwrap();
    b.arc(consume, sink, ArcMapping::Reduction).unwrap();
    b.build().unwrap()
}

/// A Synchronization Memory with the block loaded and every first-stage
/// instance dispatched; returns the instances whose completions are the
/// measured work.
pub fn armed(program: &DdmProgram, kernels: u32) -> (SyncMemory<'_>, Vec<Instance>) {
    let sm = SyncMemory::new(program, kernels, 0);
    let mut ready = Vec::new();
    let inlet = sm.armed_inlet();
    sm.dispatch(inlet);
    sm.complete(inlet, &mut ready).expect("inlet completion");
    // the block is loaded; `ready` holds the zero-ready-count first stage
    let work = ready.clone();
    for &i in &work {
        sm.dispatch(i);
    }
    (sm, work)
}

/// Complete every instance from one thread — the pre-split model where a
/// single TSU owner performs all ready-count updates.
pub fn complete_serialized(sm: &SyncMemory<'_>, work: &[Instance]) {
    let mut out = Vec::new();
    for &i in work {
        sm.complete(i, &mut out).expect("serialized completion");
    }
}

/// Complete the instances from `kernels` threads, each completing the
/// instances it owns — the sharded direct-update path of the threaded
/// runtime.
pub fn complete_sharded(sm: &SyncMemory<'_>, work: &[Instance], kernels: u32) {
    let gm = sm.graph();
    std::thread::scope(|s| {
        for k in 0..kernels {
            let mine: Vec<Instance> = work
                .iter()
                .copied()
                .filter(|&i| gm.owner_of(i) == KernelId(k))
                .collect();
            s.spawn(move || {
                let mut out = Vec::new();
                for i in mine {
                    sm.complete(i, &mut out).expect("sharded completion");
                }
            });
        }
    });
}

/// Nanoseconds to complete all first-stage instances of `program`, setup
/// excluded. `sharded = false` runs the single-drainer baseline.
pub fn measure(program: &DdmProgram, kernels: u32, sharded: bool) -> u64 {
    let (sm, work) = armed(program, kernels);
    let t = Instant::now();
    if sharded {
        complete_sharded(&sm, &work, kernels);
    } else {
        complete_serialized(&sm, &work);
    }
    let ns = t.elapsed().as_nanos() as u64;
    assert_eq!(sm.completions() as usize, work.len() + 1, "lost completions");
    ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_complete_every_instance() {
        let p = pipeline(64);
        let (sm, work) = armed(&p, 4);
        assert_eq!(work.len(), 64);
        complete_serialized(&sm, &work);
        assert_eq!(sm.completions(), 65); // inlet + 64

        let (sm, work) = armed(&p, 4);
        complete_sharded(&sm, &work, 4);
        assert_eq!(sm.completions(), 65);
        // every update went through a shard
        let updates: u64 = sm.shard_stats().iter().map(|s| s.rc_updates).sum();
        assert_eq!(updates, sm.stats().rc_updates);
    }

    #[test]
    fn measure_reports_nonzero_time() {
        let p = pipeline(128);
        assert!(measure(&p, 1, false) > 0);
        assert!(measure(&p, 2, true) > 0);
    }
}
