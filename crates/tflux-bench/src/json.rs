//! A minimal JSON value and pretty-printer for the bench report files.
//!
//! The bench harness writes small machine-readable reports
//! (`BENCH_tsu.json`, `figures --json`). Those are flat rows of numbers
//! and labels, so a hand-rolled writer keeps the harness free of a
//! serialization dependency and lets it build in offline containers.

use std::fmt::{self, Write as _};

/// A JSON value. Objects preserve insertion order, matching the struct
/// field order the reports are built in.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float. Non-finite values print as `null`.
    F64(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Build an array by converting each element.
    pub fn arr<T: ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(|t| t.to_json()).collect())
    }

    /// Pretty-print with two-space indentation and a trailing newline,
    /// the layout the repo's `BENCH_*.json` files use.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0).expect("fmt to String cannot fail");
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, depth: usize) -> fmt::Result {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => write!(out, "{b}")?,
            Json::U64(n) => write!(out, "{n}")?,
            Json::I64(n) => write!(out, "{n}")?,
            Json::F64(x) if x.is_finite() => {
                // `{}` on f64 is the shortest round-trippable decimal;
                // force a `.0` on integral values so the field reads as
                // a float in the report
                if *x == x.trunc() && x.abs() < 1e15 {
                    write!(out, "{x:.1}")?;
                } else {
                    write!(out, "{x}")?;
                }
            }
            Json::F64(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s)?,
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                } else {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('\n');
                        indent(out, depth + 1);
                        item.write(out, depth + 1)?;
                    }
                    out.push('\n');
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                } else {
                    out.push('{');
                    for (i, (k, v)) in pairs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('\n');
                        indent(out, depth + 1);
                        write_escaped(out, k)?;
                        out.push_str(": ");
                        v.write(out, depth + 1)?;
                    }
                    out.push('\n');
                    indent(out, depth);
                    out.push('}');
                }
            }
        }
        Ok(())
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) -> fmt::Result {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.push(c),
        }
    }
    out.push('"');
    Ok(())
}

/// Conversion into a [`Json`] value; implemented by every report row type.
pub trait ToJson {
    /// Convert `self` to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::U64(u64::from(*self))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::U64(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_report_shape() {
        let j = Json::obj([
            ("bench", Json::Str("demo".into())),
            ("threads", Json::U64(8)),
            ("ratio", Json::F64(2.0)),
            (
                "rows",
                Json::Arr(vec![Json::obj([
                    ("path", Json::Str("a".into())),
                    ("ns", Json::U64(12)),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = j.pretty();
        assert!(s.starts_with("{\n  \"bench\": \"demo\""), "{s}");
        assert!(s.contains("\"ratio\": 2.0"), "{s}");
        assert!(s.contains("\"empty\": []"), "{s}");
        assert!(s.ends_with("}\n"), "{s}");
    }

    #[test]
    fn floats_round_trip_and_escape_strings() {
        assert_eq!(Json::F64(0.123456789).pretty(), "0.123456789\n");
        assert_eq!(Json::F64(f64::NAN).pretty(), "null\n");
        assert_eq!(
            Json::Str("a\"b\\c\n".into()).pretty(),
            "\"a\\\"b\\\\c\\n\"\n"
        );
    }
}
