//! §5 unroll ablation bench: element-granular MMULT at unroll 1 vs 64 on
//! the hardware and software TSU cost models. Prints the reproduced
//! speedups (hard is grain-insensitive; soft collapses at fine grain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tflux_sim::{Machine, MachineConfig};
use tflux_workloads::common::Params;
use tflux_workloads::mmult::elem_setup;
use tflux_workloads::sizes::SizeClass;

fn unroll(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_unroll");
    g.sample_size(10);
    for (label, machine) in [
        ("hard", Machine::new(MachineConfig::bagle(8))),
        ("soft", Machine::new(MachineConfig::xeon_x3650(6))),
    ] {
        for u in [1u32, 64] {
            let kernels = machine.config().cores;
            let p = Params::hard(kernels, u, SizeClass::Small);
            let (prog, src) = elem_setup(&p);
            let seq = machine.run_sequential(&prog, &src);
            let par = machine.run(&prog, &src);
            eprintln!(
                "unroll {label}/u={u}: speedup {:.2}x",
                par.speedup_over(&seq)
            );
            g.bench_with_input(
                BenchmarkId::new(label, u),
                &(machine, p),
                |b, (machine, p)| {
                    b.iter(|| {
                        let (prog, src) = elem_setup(p);
                        black_box(machine.run(&prog, &src).cycles)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, unroll);
criterion_main!(benches);
