//! §4.2 ablation bench: Thread-to-Update-Buffer contention. Real threads
//! hammer the TUB while a drainer empties it, with 1 vs 8 segments — the
//! segmented try-lock design is the paper's answer to completion-path
//! serialization, and this measures exactly that effect on host hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tflux_core::ids::{Context, Epoch, Instance, ThreadId};
use tflux_runtime::tub::Tub;

const PUSHES_PER_THREAD: u32 = 2_000;
const PUSHERS: u32 = 4;

fn contended_run(segments: usize) -> u64 {
    let tub = Arc::new(Tub::new(segments));
    let stop = Arc::new(AtomicBool::new(false));
    let drainer = {
        let tub = Arc::clone(&tub);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            while !stop.load(Ordering::Acquire) {
                tub.drain_into(&mut sink);
                std::thread::yield_now();
            }
            tub.drain_into(&mut sink);
            sink.len() as u64
        })
    };
    std::thread::scope(|s| {
        for t in 0..PUSHERS {
            let tub = &tub;
            s.spawn(move || {
                for c in 0..PUSHES_PER_THREAD {
                    tub.push(Instance::new(ThreadId(t), Context(c)), Epoch(0));
                }
            });
        }
    });
    stop.store(true, Ordering::Release);
    let drained = drainer.join().unwrap();
    assert_eq!(drained, (PUSHERS * PUSHES_PER_THREAD) as u64);
    tub.stats().snapshot().busy_hits
}

fn tub_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tub_contention");
    g.sample_size(10);
    for segments in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("segments", segments),
            &segments,
            |b, &segments| b.iter(|| contended_run(segments)),
        );
    }
    g.finish();
}

criterion_group!(benches, tub_bench);
criterion_main!(benches);
