//! Figure 6 bench: one TFluxSoft-model simulation per benchmark (Small, 6
//! kernels). Full sweep: `cargo run --release --bin figures -- fig6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tflux_sim::{Machine, MachineConfig};
use tflux_workloads::common::Params;
use tflux_workloads::setup::{default_unroll, sim_setup};
use tflux_workloads::sizes::{Platform, SizeClass};
use tflux_workloads::Bench;

fn fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_tfluxsoft");
    g.sample_size(10);
    for bench in Bench::ALL {
        // MMULT at the simulated sizes (see EXPERIMENTS.md)
        let platform = if bench == Bench::Mmult {
            Platform::Simulated
        } else {
            Platform::Native
        };
        let p = Params {
            kernels: 6,
            unroll: default_unroll(bench, Platform::Native),
            size: SizeClass::Small,
            platform,
        };
        g.bench_with_input(BenchmarkId::new("simulate", bench.name()), &p, |b, p| {
            b.iter(|| {
                let (prog, src) = sim_setup(bench, p);
                let m = Machine::new(MachineConfig::xeon_x3650(6));
                black_box(m.run(&prog, src.as_ref()).cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
