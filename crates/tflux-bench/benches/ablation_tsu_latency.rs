//! §4.1 ablation bench: MMULT on the hardware-TSU machine with the TSU's
//! per-command processing time at its 1 and 128-cycle extremes. The two
//! groups should measure within ~1% of each other — the paper's claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tflux_sim::{Machine, MachineConfig, TsuCosts};
use tflux_workloads::common::Params;
use tflux_workloads::setup::{sim_setup, with_default_unroll};
use tflux_workloads::sizes::SizeClass;
use tflux_workloads::Bench;

fn tsu_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_tsu_latency");
    g.sample_size(10);
    let p = with_default_unroll(Bench::Mmult, Params::hard(8, 0, SizeClass::Small));
    for op in [1u64, 128] {
        let cfg = MachineConfig::bagle(8).with_tsu(TsuCosts {
            op,
            ..TsuCosts::hard()
        });
        // report simulated cycles (the actual claim) alongside host time
        let (prog, src) = sim_setup(Bench::Mmult, &p);
        let cycles = Machine::new(cfg).run(&prog, src.as_ref()).cycles;
        eprintln!("tsu op={op}: {cycles} simulated cycles");
        g.bench_with_input(BenchmarkId::new("op_cycles", op), &cfg, |b, cfg| {
            b.iter(|| {
                let (prog, src) = sim_setup(Bench::Mmult, &p);
                black_box(Machine::new(*cfg).run(&prog, src.as_ref()).cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, tsu_latency);
criterion_main!(benches);
