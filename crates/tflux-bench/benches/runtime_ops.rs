//! Component microbenches: the TSU state machine's scheduling throughput
//! (fetch/complete round trips) and the threaded runtime's per-DThread
//! overhead — the quantities the platform cost models abstract.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tflux_core::prelude::*;
use tflux_core::tsu::drain_sequential;
use tflux_runtime::{BodyTable, Runtime, RuntimeConfig};

fn fork_join(arity: u32) -> DdmProgram {
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::new("work", arity));
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(work, sink, ArcMapping::Reduction).unwrap();
    b.build().unwrap()
}

fn tsu_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("tsu_state_machine");
    for arity in [256u32, 4096] {
        let program = fork_join(arity);
        g.throughput(Throughput::Elements(program.total_instances() as u64));
        g.bench_with_input(BenchmarkId::new("drain", arity), &program, |b, program| {
            b.iter(|| {
                let mut tsu = CoreTsu::new(program, 8, TsuConfig::default());
                black_box(drain_sequential(&mut tsu).len())
            })
        });
    }
    g.finish();
}

fn runtime_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_per_dthread_overhead");
    g.sample_size(10);
    for kernels in [1u32, 2, 4] {
        let program = fork_join(1024);
        g.throughput(Throughput::Elements(program.total_instances() as u64));
        g.bench_with_input(
            BenchmarkId::new("noop_dthreads", kernels),
            &program,
            |b, program| {
                b.iter(|| {
                    let bodies = BodyTable::new(program);
                    let report = Runtime::new(RuntimeConfig::with_kernels(kernels))
                        .run(program, &bodies)
                        .unwrap();
                    black_box(report.total_executed())
                })
            },
        );
    }
    g.finish();
}

fn program_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("program_construction");
    g.bench_function("build_1k_threads", |b| {
        b.iter(|| {
            let mut builder = ProgramBuilder::new();
            let blk = builder.block();
            let mut prev: Option<ThreadId> = None;
            for i in 0..1000 {
                let t = builder.thread(blk, ThreadSpec::new(format!("t{i}"), 4));
                if let Some(p) = prev {
                    builder.arc(p, t, ArcMapping::OneToOne).unwrap();
                }
                prev = Some(t);
            }
            black_box(builder.build().unwrap().total_instances())
        })
    });
    g.finish();
}

criterion_group!(benches, tsu_throughput, runtime_overhead, program_build);
criterion_main!(benches);
