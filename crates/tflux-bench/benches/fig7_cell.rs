//! Figure 7 bench: one TFluxCell simulation per Cell benchmark (Small, 6
//! SPEs). Full sweep: `cargo run --release --bin figures -- fig7`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tflux_cell::{CellConfig, CellMachine};
use tflux_workloads::common::Params;
use tflux_workloads::setup::{cell_setup, with_default_unroll};
use tflux_workloads::sizes::SizeClass;
use tflux_workloads::Bench;

fn fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_tfluxcell");
    g.sample_size(10);
    for bench in Bench::CELL {
        let p = with_default_unroll(bench, Params::cell(6, 0, SizeClass::Small));
        g.bench_with_input(BenchmarkId::new("simulate", bench.name()), &p, |b, p| {
            b.iter(|| {
                let (prog, src) = cell_setup(bench, p);
                let m = CellMachine::new(CellConfig::ps3());
                black_box(m.run(&prog, src.as_ref()).expect("cell run").cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
