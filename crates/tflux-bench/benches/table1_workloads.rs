//! Table 1 bench: the *real* sequential reference computations of the five
//! workloads at their Small sizes — native wall-clock numbers for the
//! workload suite itself (as opposed to the simulated-cycle figures).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tflux_workloads::sizes::{
    fft_n, mmult_n, qsort_n, susan_dims, trapez_intervals, Platform, SizeClass,
};
use tflux_workloads::{fft, mmult, qsort, susan, trapez};

fn table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_sequential_references");
    g.sample_size(10);

    g.bench_function("TRAPEZ/small", |b| {
        // 2^19 points is ~5 ms of real quadrature; use 2^16 for bench turns
        let n = trapez_intervals(SizeClass::Small) >> 3;
        b.iter(|| black_box(trapez::seq(black_box(n))))
    });

    g.bench_function("MMULT/small", |b| {
        let n = mmult_n(SizeClass::Small, Platform::Simulated);
        let (ma, mb) = mmult::inputs(n);
        b.iter(|| black_box(mmult::seq(&ma, &mb, n)))
    });

    g.bench_function("QSORT/small", |b| {
        let n = qsort_n(SizeClass::Small, Platform::Native);
        b.iter(|| black_box(qsort::seq(black_box(n))))
    });

    g.bench_function("SUSAN/small", |b| {
        let (w, h) = susan_dims(SizeClass::Small);
        b.iter(|| black_box(susan::seq(black_box(w), black_box(h))))
    });

    g.bench_function("FFT/small", |b| {
        let n = fft_n(SizeClass::Small);
        b.iter(|| black_box(fft::seq(black_box(n))))
    });

    g.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
