//! Figure 5 bench: time one TFluxHard simulation per benchmark (Small, 8
//! kernels) and report the measured speedup as Criterion throughput
//! metadata. The full sweep lives in `cargo run --release --bin figures --
//! fig5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tflux_sim::{Machine, MachineConfig};
use tflux_workloads::common::Params;
use tflux_workloads::setup::{sim_baseline, sim_setup, with_default_unroll};
use tflux_workloads::sizes::SizeClass;
use tflux_workloads::Bench;

fn fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_tfluxhard");
    g.sample_size(10);
    for bench in Bench::ALL {
        let p = with_default_unroll(bench, Params::hard(8, 0, SizeClass::Small));
        // report the reproduced speedup once per benchmark
        let (prog, src) = sim_setup(bench, &p);
        let (sprog, ssrc) = sim_baseline(bench, &p);
        let m = Machine::new(MachineConfig::bagle(8));
        let seq = m.run_sequential(&sprog, ssrc.as_ref());
        let par = m.run(&prog, src.as_ref());
        eprintln!(
            "fig5 {} @8 kernels Small: speedup {:.2}x",
            bench.name(),
            par.speedup_over(&seq)
        );
        g.bench_with_input(BenchmarkId::new("simulate", bench.name()), &p, |b, p| {
            b.iter(|| {
                let (prog, src) = sim_setup(bench, p);
                let m = Machine::new(MachineConfig::bagle(8));
                black_box(m.run(&prog, src.as_ref()).cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
