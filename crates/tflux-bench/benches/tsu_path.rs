//! Criterion microbench of the TSU completion hot path: the serialized
//! single-drainer model (the pre-split emulator performing every
//! ready-count update) against the sharded direct-update path (kernel
//! threads completing through per-kernel Synchronization Memory shards),
//! at 1 vs N kernels. `cargo run -p tflux-bench --bin bench_tsu` runs the
//! same scenario without criterion and writes `BENCH_tsu.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tflux_bench::tsu_path::{armed, complete_serialized, complete_sharded, pipeline};

const ARITY: u32 = 4096;

fn completion_path(c: &mut Criterion) {
    let program = pipeline(ARITY);
    let mut g = c.benchmark_group("tsu_completion_path");
    g.throughput(Throughput::Elements(ARITY as u64));
    g.sample_size(10);
    for kernels in [1u32, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("serialized", kernels),
            &kernels,
            |b, &k| {
                b.iter(|| {
                    let (sm, work) = armed(&program, k);
                    complete_serialized(&sm, &work);
                    black_box(sm.completions())
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("sharded", kernels), &kernels, |b, &k| {
            b.iter(|| {
                let (sm, work) = armed(&program, k);
                complete_sharded(&sm, &work, k);
                black_box(sm.completions())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, completion_path);
criterion_main!(benches);
