#!/usr/bin/env bash
# Build/test the workspace with the vendor/stub dependency stubs, for
# containers with no network and no cargo registry cache.
#
# The stubs are API-compatible with the narrow slice of each external
# crate this workspace uses (see vendor/stub/*/src/lib.rs); they are wired
# in through a cargo --config patch, so the normal build (and CI) is
# untouched and keeps using the real registry crates.
#
# Usage:
#   scripts/offline-check.sh                 # cargo check --workspace --all-targets
#   scripts/offline-check.sh test -q         # cargo test -q (all args forwarded)
#   scripts/offline-check.sh build --release
#
# A separate target dir keeps stub artifacts from ever mixing with a real
# registry build's cache.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_TARGET_DIR="${CARGO_TARGET_DIR:-target/offline-stub}"

cmd=("check" "--workspace" "--all-targets")
if [ "$#" -gt 0 ]; then
  cmd=("$@")
fi

exec cargo --config vendor/offline.toml --offline "${cmd[@]}"
