#!/usr/bin/env bash
# Build/test the workspace with the vendor/stub dependency stubs, for
# containers with no network and no cargo registry cache.
#
# The stubs are API-compatible with the narrow slice of each external
# crate this workspace uses (see vendor/stub/*/src/lib.rs); they are wired
# in through a cargo --config patch, so the normal build (and CI) is
# untouched and keeps using the real registry crates.
#
# Usage:
#   scripts/offline-check.sh                 # cargo check --workspace --all-targets
#   scripts/offline-check.sh test -q         # cargo test -q (all args forwarded)
#   scripts/offline-check.sh build --release
#
# A separate target dir keeps stub artifacts from ever mixing with a real
# registry build's cache, and the root Cargo.lock is saved/restored around
# the cargo invocation so stub-patched resolutions never leak into (or
# overwrite) a genuine registry-resolved lockfile. The stub resolution is
# kept in target/offline-stub/Cargo.lock between runs instead.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_TARGET_DIR="${CARGO_TARGET_DIR:-target/offline-stub}"
mkdir -p "$CARGO_TARGET_DIR"

stub_lock="$CARGO_TARGET_DIR/Cargo.lock"
saved_lock="$CARGO_TARGET_DIR/Cargo.lock.real-backup"
had_real_lock=0

restore_lock() {
  # Whatever cargo wrote to the root lockfile is a stub resolution: stash
  # it for reuse by the next offline run, then put the real one back (or
  # remove the file entirely if the repo had none).
  if [ -f Cargo.lock ]; then
    mv -f Cargo.lock "$stub_lock"
  fi
  if [ "$had_real_lock" -eq 1 ]; then
    mv -f "$saved_lock" Cargo.lock
  fi
}

if [ -f Cargo.lock ]; then
  had_real_lock=1
  cp -f Cargo.lock "$saved_lock"
fi
if [ -f "$stub_lock" ]; then
  cp -f "$stub_lock" Cargo.lock
fi
trap restore_lock EXIT

cmd=("check" "--workspace" "--all-targets")
if [ "$#" -gt 0 ]; then
  cmd=("$@")
fi

cargo --config vendor/offline.toml --offline "${cmd[@]}"
