//! Golden test for the DDMCPP soft back-end: the committed, *compiled*
//! example `examples/generated_vecnorm.rs` (a real example target of this
//! package — rustc itself proves the generated code is valid) must be
//! exactly what the preprocessor emits for `examples/ddm/vecnorm.ddm`.
//!
//! If codegen changes intentionally, regenerate with:
//! ```sh
//! cargo run -p tflux-ddmcpp --bin ddmcpp -- \
//!     --target soft examples/ddm/vecnorm.ddm -o examples/generated_vecnorm.rs
//! ```

use tflux::ddmcpp::{self, Backend};

const SOURCE: &str = include_str!("../examples/ddm/vecnorm.ddm");
const TRAPEZ_SOURCE: &str = include_str!("../examples/ddm/trapez.ddm");
const GOLDEN_TRAPEZ: &str = include_str!("../examples/generated_trapez.rs");
const GOLDEN_SOFT: &str = include_str!("../examples/generated_vecnorm.rs");
const GOLDEN_SIM: &str = include_str!("../examples/generated_vecnorm_sim.rs");

#[test]
fn soft_backend_output_matches_committed_example() {
    let generated = ddmcpp::preprocess(SOURCE, Backend::Soft).expect("preprocess");
    assert_eq!(
        generated, GOLDEN_SOFT,
        "codegen drifted from the committed example; regenerate it (see module docs)"
    );
}

#[test]
fn sim_backend_output_matches_committed_example() {
    let generated = ddmcpp::preprocess(SOURCE, Backend::Sim).expect("preprocess");
    assert_eq!(
        generated, GOLDEN_SIM,
        "sim codegen drifted; regenerate examples/generated_vecnorm_sim.rs"
    );
}

#[test]
fn trapez_backend_output_matches_committed_example() {
    let generated = ddmcpp::preprocess(TRAPEZ_SOURCE, Backend::Soft).expect("preprocess");
    assert_eq!(
        generated, GOLDEN_TRAPEZ,
        "trapez codegen drifted; regenerate examples/generated_trapez.rs"
    );
}

#[test]
fn vecnorm_module_lowers_to_expected_shape() {
    let module = ddmcpp::parse(SOURCE).unwrap();
    assert_eq!(module.kernels, Some(4));
    assert_eq!(module.blocks.len(), 2);
    assert_eq!(module.thread_count(), 4);
    let program = ddmcpp::lower::to_program(&module).unwrap();
    // 4096/256 = 16 fill instances + norm + 16 normalize + check
    //  + 2 inlets + 2 outlets
    assert_eq!(program.total_instances(), 16 + 1 + 16 + 1 + 4);
}

#[test]
fn other_backends_also_generate_for_vecnorm() {
    for backend in [Backend::Sim, Backend::Cell] {
        let out = ddmcpp::preprocess(SOURCE, backend).unwrap();
        assert!(out.contains("pub const N: i64 = 4096;"), "{backend:?}");
        assert!(out.contains("builder.build()"), "{backend:?}");
    }
    // the cell backend derives DMA bytes from the var table:
    // data = 4096 doubles = 32768 bytes
    let cell = ddmcpp::preprocess(SOURCE, Backend::Cell).unwrap();
    assert!(cell.contains("32768"), "{cell}");
}
