//! The sharded DES engine must be an *exact* stand-in for the global
//! event heap: same cycles, same per-core busy/idle split, same memory
//! and TSU counters, on every workload and every machine shape. The
//! conservative-window engine is only allowed to change how the event
//! queue is organized — never what the simulation computes — so this
//! matrix runs all five paper workloads across the flat 8-core Bagle
//! board, the 9-core x86 box, and the 64-core 4-node NUMA T3-4, and
//! requires the two engines to agree field-for-field.

use tflux::sim::{DesEngine, Machine, MachineConfig};
use tflux::workloads::common::Params;
use tflux::workloads::setup::{sim_setup, with_default_unroll};
use tflux::workloads::sizes::SizeClass;
use tflux::workloads::Bench;

fn machines() -> [(&'static str, MachineConfig); 3] {
    [
        ("bagle_x8", MachineConfig::bagle(8)),
        (
            "x86_x8",
            MachineConfig::x86_9core(8).expect("8 kernels fit the 9-core x86"),
        ),
        (
            "sparc_t3_4_x64",
            MachineConfig::sparc_t3_4(64).expect("64 kernels fit the T3-4"),
        ),
    ]
}

fn run(bench: Bench, cfg: MachineConfig, engine: DesEngine) -> tflux::sim::SimReport {
    let p = with_default_unroll(bench, Params::hard(cfg.cores, 0, SizeClass::Small));
    let (prog, src) = sim_setup(bench, &p);
    Machine::new(cfg)
        .with_engine(engine)
        .run(&prog, src.as_ref())
}

#[test]
fn sharded_engine_is_cycle_exact_on_every_workload_and_machine() {
    for bench in Bench::ALL {
        for (name, cfg) in machines() {
            let global = run(bench, cfg, DesEngine::Global);
            let sharded = run(bench, cfg, DesEngine::Sharded);
            assert_eq!(
                global.cycles,
                sharded.cycles,
                "{} on {name}: sharded engine diverged in makespan",
                bench.name()
            );
            // the engines must agree on *everything* the simulation
            // observes, not just the makespan — any drift in the event
            // order shows up in the per-core splits or the counters
            assert_eq!(
                format!("{global:?}"),
                format!("{sharded:?}"),
                "{} on {name}: sharded engine report diverged",
                bench.name()
            );
        }
    }
}

#[test]
fn numa_machine_actually_pays_numa_costs_in_the_matrix() {
    // guard against the matrix silently degenerating to flat machines:
    // at least one 64-core run must cross nodes
    let t3 = MachineConfig::sparc_t3_4(64).expect("64 kernels fit the T3-4");
    let r = run(Bench::Mmult, t3, DesEngine::Sharded);
    assert!(
        r.mem.remote_node > 0,
        "MMULT on the T3-4 never crossed a node boundary"
    );
}
