//! The sharded DES engine — serial *and* parallel — must be an exact
//! stand-in for the global event heap: same cycles, same per-core
//! busy/idle split, same memory and TSU counters, on every workload and
//! every machine shape. Draining event lanes on host threads is only
//! allowed to change how fast the simulator runs — never what it
//! computes — so this matrix runs all five paper workloads across the
//! flat 8-core Bagle board, the 9-core x86 box, and the 64-core 4-node
//! NUMA T3-4, and requires every engine × host-thread combination to
//! agree field-for-field with the `Global` oracle.
//!
//! CI's sim-scale job widens the host-thread axis via
//! `TFLUX_SIM_HOST_THREADS` (comma-separated counts) without recompiling.

use tflux::sim::{DesEngine, Machine, MachineConfig, SimReport};
use tflux::workloads::common::Params;
use tflux::workloads::setup::{sim_setup, with_default_unroll};
use tflux::workloads::sizes::SizeClass;
use tflux::workloads::Bench;

fn machines() -> [(&'static str, MachineConfig); 3] {
    [
        ("bagle_x8", MachineConfig::bagle(8)),
        (
            "x86_x8",
            MachineConfig::x86_9core(8).expect("8 kernels fit the 9-core x86"),
        ),
        (
            "sparc_t3_4_x64",
            MachineConfig::sparc_t3_4(64).expect("64 kernels fit the T3-4"),
        ),
    ]
}

/// Host-thread counts the parallel engine is exercised at: serial lanes
/// plus a 4-thread pool by default; CI appends more via
/// `TFLUX_SIM_HOST_THREADS=2,4,...`.
fn host_thread_counts() -> Vec<u32> {
    let mut counts = vec![1, 4];
    if let Ok(v) = std::env::var("TFLUX_SIM_HOST_THREADS") {
        for tok in v.split(',') {
            if let Ok(n) = tok.trim().parse::<u32>() {
                if n > 0 && !counts.contains(&n) {
                    counts.push(n);
                }
            }
        }
    }
    counts
}

fn run(
    bench: Bench,
    cfg: MachineConfig,
    engine: DesEngine,
    host_threads: u32,
    epochs: u64,
) -> SimReport {
    let p = with_default_unroll(bench, Params::hard(cfg.cores, 0, SizeClass::Small));
    let (prog, src) = sim_setup(bench, &p);
    Machine::new(cfg)
        .with_engine(engine)
        .with_host_threads(host_threads)
        .with_epochs(epochs)
        .run(&prog, src.as_ref())
        .expect("sim run")
}

#[test]
fn engine_matrix_is_cycle_exact_on_every_workload_and_machine() {
    let counts = host_thread_counts();
    for bench in Bench::ALL {
        for (name, cfg) in machines() {
            let global = run(bench, cfg, DesEngine::Global, 1, 1);
            for &t in &counts {
                let sharded = run(bench, cfg, DesEngine::Sharded, t, 1);
                assert_eq!(
                    global.cycles,
                    sharded.cycles,
                    "{} on {name} at {t} host threads: sharded engine \
                     diverged in makespan",
                    bench.name()
                );
                // the engines must agree on *everything* the simulation
                // observes, not just the makespan — any drift in the event
                // order shows up in the per-core splits or the counters
                assert_eq!(
                    format!("{global:?}"),
                    format!("{sharded:?}"),
                    "{} on {name} at {t} host threads: sharded engine \
                     report diverged",
                    bench.name()
                );
            }
        }
    }
}

#[test]
fn streaming_epochs_agree_across_engines_and_host_threads() {
    // re-armed contexts and credit-windowed wakeups produce same-cycle
    // device traffic; the parallel engine must replay it identically
    let counts = host_thread_counts();
    for (name, cfg) in machines() {
        let global = run(Bench::Trapez, cfg, DesEngine::Global, 1, 3);
        assert_eq!(global.tsu.epochs, 3, "{name}: epochs did not stream");
        for &t in &counts {
            let sharded = run(Bench::Trapez, cfg, DesEngine::Sharded, t, 3);
            assert_eq!(
                format!("{global:?}"),
                format!("{sharded:?}"),
                "TRAPEZ/3-epoch on {name} at {t} host threads diverged"
            );
        }
    }
}

#[test]
fn parallel_sweep_is_bit_reproducible() {
    // two identical figures-style sweeps on the parallel engine must
    // produce byte-identical reports — and match the Global oracle — so
    // a host-scheduling dependence anywhere in the commit pipeline fails
    // loudly rather than as a flaky bench number
    let sweep = |engine: DesEngine, threads: u32| -> Vec<String> {
        let mut out = Vec::new();
        for bench in Bench::ALL {
            for (_, cfg) in machines() {
                out.push(format!("{:?}", run(bench, cfg, engine, threads, 1)));
            }
        }
        out
    };
    let first = sweep(DesEngine::Sharded, 4);
    let second = sweep(DesEngine::Sharded, 4);
    assert_eq!(first, second, "parallel sweep is not reproducible");
    let oracle = sweep(DesEngine::Global, 1);
    assert_eq!(first, oracle, "parallel sweep diverged from the oracle");
}

#[test]
fn numa_machine_actually_pays_numa_costs_in_the_matrix() {
    // guard against the matrix silently degenerating to flat machines:
    // at least one 64-core run must cross nodes
    let t3 = MachineConfig::sparc_t3_4(64).expect("64 kernels fit the T3-4");
    let r = run(Bench::Mmult, t3, DesEngine::Sharded, 4, 1);
    assert!(
        r.mem.remote_node > 0,
        "MMULT on the T3-4 never crossed a node boundary"
    );
}
