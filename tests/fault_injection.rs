//! Fault-injection integration: the no-op injector is observationally free,
//! and a targeted `FaultPlan` drives panic retry end to end through the
//! umbrella crate's public API.

use std::sync::atomic::{AtomicU64, Ordering};
use tflux::core::prelude::*;
use tflux::runtime::{BodyTable, FaultPlan, NoFaults, RetryPolicy, Runtime, RuntimeConfig};

fn fork_join(arity: u32) -> (DdmProgram, ThreadId, ThreadId) {
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let src = b.thread(blk, ThreadSpec::scalar("src"));
    let work = b.thread(blk, ThreadSpec::new("work", arity));
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(src, work, ArcMapping::Broadcast).unwrap();
    b.arc(work, sink, ArcMapping::Reduction).unwrap();
    (b.build().unwrap(), work, sink)
}

fn sum_bodies<'a>(
    program: &DdmProgram,
    work: ThreadId,
    sink: ThreadId,
    acc: &'a AtomicU64,
    total: &'a AtomicU64,
) -> BodyTable<'a> {
    let mut bodies = BodyTable::new(program);
    bodies.set(work, move |c| {
        acc.fetch_add((c.context.0 as u64 + 1).pow(2), Ordering::Relaxed);
    });
    bodies.set(sink, move |_| {
        total.store(acc.load(Ordering::Relaxed), Ordering::Relaxed);
    });
    bodies
}

/// The deterministic counters a fault-free run must reproduce exactly,
/// whichever injector (or none) is threaded through.
fn deterministic_counters(r: &tflux::runtime::RunReport) -> (u64, u64, u64, u64, usize, u64, u64) {
    (
        r.tsu.completions,
        r.tsu.fetches,
        r.tsu.rc_updates,
        r.tsu.blocks_loaded,
        r.tsu.max_resident,
        r.tub.pushes,
        r.total_executed(),
    )
}

#[test]
fn noop_injector_counters_match_plain_run() {
    let (program, work, sink) = fork_join(16);
    let runtime = Runtime::new(RuntimeConfig::with_kernels(3));
    let expected_sum: u64 = (1..=16u64).map(|i| i * i).sum();

    let mut reports = Vec::new();
    for variant in 0..3 {
        let acc = AtomicU64::new(0);
        let total = AtomicU64::new(0);
        let bodies = sum_bodies(&program, work, sink, &acc, &total);
        let report = match variant {
            0 => runtime.run(&program, &bodies).unwrap(),
            1 => runtime.run_with(&program, &bodies, &NoFaults).unwrap(),
            _ => {
                let zero_rate = FaultPlan::new(0);
                let r = runtime.run_with(&program, &bodies, &zero_rate).unwrap();
                assert_eq!(zero_rate.counts().total(), 0);
                r
            }
        };
        assert_eq!(total.load(Ordering::Relaxed), expected_sum);
        reports.push(deterministic_counters(&report));
    }
    assert_eq!(reports[0], reports[1], "run vs run_with(NoFaults)");
    assert_eq!(reports[0], reports[2], "run vs run_with(zero-rate plan)");
}

#[test]
fn targeted_panic_first_recovers_through_retry() {
    let (program, work, sink) = fork_join(8);
    let acc = AtomicU64::new(0);
    let total = AtomicU64::new(0);
    let mut bodies = sum_bodies(&program, work, sink, &acc, &total);
    bodies.mark_idempotent(work);

    // instance (work, 3) fails its first two attempts, then succeeds
    let victim = Instance::new(work, Context(3));
    let plan = FaultPlan::new(11).panic_first(victim, 2);
    let report = Runtime::new(RuntimeConfig::with_kernels(2).retry(RetryPolicy::attempts(3)))
        .run_with(&program, &bodies, &plan)
        .unwrap();

    // the injected panics fire before the body runs, so the sum is intact
    assert_eq!(
        total.load(Ordering::Relaxed),
        (1..=8u64).map(|i| i * i).sum()
    );
    assert_eq!(report.total_retries(), 2);
    assert_eq!(plan.counts().body_panics, 2);
    assert_eq!(report.tsu.completions as usize, program.total_instances());
}
