//! Equivalence of the TSU-unit compositions: the threaded TFluxSoft path
//! (kernels post-processing App completions directly through the sharded
//! Synchronization Memory + the emulator handling block transitions), the
//! simulated hardware TSU device, and the sequential reference executor
//! all drive the same `GraphMemory`/`SyncMemory` semantics — so under the
//! deterministic `GlobalFifo` policy they must complete the *same multiset
//! of instances* with the *same ready-count-update and block-load
//! bookkeeping* for every workload in the suite.

use tflux::core::ids::Epoch;
use tflux::core::prelude::*;
use tflux::core::tsu::{drain_sequential, FetchResult, TsuStats};
use tflux::runtime::{BodyTable, Runtime, RuntimeConfig, SoftTsu};
use tflux::sim::tsu_dev::{DevFetch, TsuDevice};
use tflux::sim::TsuCosts;
use tflux::workloads::common::Params;
use tflux::workloads::setup::{sim_setup, with_default_unroll};
use tflux::workloads::sizes::SizeClass;
use tflux::workloads::Bench;

const KERNELS: u32 = 3;
/// Completions per funnel flush in the batched variants.
const FUNNEL_BATCH: u32 = 8;
/// Consecutive streamed passes in the epoch-equivalence scenarios.
const STREAM_EPOCHS: u64 = 3;

fn fifo() -> TsuConfig {
    TsuConfig {
        capacity: 0,
        policy: SchedulingPolicy::GlobalFifo,
        // pinned: the funnel-free baseline the batched variants contrast
        flush: FlushPolicy::Direct,
        ..Default::default()
    }
}

/// Same deterministic policy with completion funnels enabled: kernels
/// (soft) and cores (hard) accumulate App completions locally and flush
/// them as batches. Batching collapses physical RMWs but must not change
/// the completion multiset or the logical decrement ledger.
fn batched() -> TsuConfig {
    TsuConfig {
        flush: FlushPolicy::Batch { size: FUNNEL_BATCH },
        ..fifo()
    }
}

/// Completion multiset + the scheduling bookkeeping the paths must agree on.
struct Outcome {
    completed: Vec<Instance>,
    rc_updates: u64,
    blocks_loaded: u64,
}

impl Outcome {
    fn new(mut completed: Vec<Instance>, stats: &TsuStats) -> Self {
        completed.sort_unstable();
        Outcome {
            completed,
            rc_updates: stats.rc_updates,
            blocks_loaded: stats.blocks_loaded,
        }
    }
}

/// TFluxSoft: real kernel threads take the direct-update path for App
/// completions; the emulator drains Inlet/Outlet transitions from the TUB.
fn soft_outcome(program: &DdmProgram, cfg: TsuConfig) -> Outcome {
    let bodies = BodyTable::new(program); // no-op bodies: scheduling only
    let (report, spans) = Runtime::new(RuntimeConfig::with_kernels(KERNELS).tsu(cfg))
        .run_traced(program, &bodies)
        .expect("soft run failed");
    let completed = spans.iter().map(|s| s.instance).collect();
    Outcome::new(completed, &report.tsu)
}

/// TFluxHard: the memory-mapped TSU device wrapping `CoreTsu`, driven
/// core-by-core exactly like the simulated kernel loop. With `epochs > 1`
/// every pass beyond the first is credited up front (the drive loop has
/// no supervisor to bank credits mid-run), so the device re-arms the
/// inlet at each pass's final outlet and streams straight through.
fn hard_stream_outcome(program: &DdmProgram, cfg: TsuConfig, epochs: u64) -> Outcome {
    let cfg = TsuConfig {
        window: epochs as usize,
        ..cfg
    };
    let tsu = CoreTsu::new(program, KERNELS, cfg);
    let mut dev = TsuDevice::new(tsu, TsuCosts::hard(), KERNELS);
    let mut completed = Vec::new();
    let mut now = 0u64;
    for _ in 1..epochs {
        let (_, done) = dev.open_epoch(now).expect("bank stream credit");
        now = done;
    }
    let mut core = 0u32;
    let mut parked_in_a_row = 0u32;
    loop {
        match dev.fetch(core, now).expect("fetch protocol error") {
            DevFetch::Thread(inst, ep, at) => {
                parked_in_a_row = 0;
                completed.push(inst);
                let (core_free, _) = dev.complete(core, at, inst, ep).expect("protocol error");
                now = core_free;
            }
            DevFetch::Parked => {
                parked_in_a_row += 1;
                assert!(parked_in_a_row <= KERNELS, "device drive deadlocked");
            }
            DevFetch::Exit(_) => break,
        }
        core = (core + 1) % KERNELS;
    }
    for e in 0..epochs {
        now = dev.retire_epoch(Epoch(e), now).expect("retire pass");
    }
    let stats = dev.tsu().stats();
    Outcome::new(completed, &stats)
}

fn hard_outcome(program: &DdmProgram, cfg: TsuConfig) -> Outcome {
    hard_stream_outcome(program, cfg, 1)
}

/// The sequential reference executor over the same units.
fn seq_outcome(program: &DdmProgram) -> Outcome {
    let mut tsu = CoreTsu::new(program, KERNELS, fifo());
    let completed = drain_sequential(&mut tsu);
    let stats = tsu.stats();
    Outcome::new(completed, &stats)
}

/// The sequential reference, streamed: drain a pass, retire its epoch,
/// open the next (which re-arms the inlet in place), drain again.
fn seq_stream_outcome(program: &DdmProgram, epochs: u64) -> Outcome {
    let cfg = TsuConfig {
        window: 2,
        ..fifo()
    };
    let mut tsu = CoreTsu::new(program, KERNELS, cfg);
    let mut completed = Vec::new();
    let mut scratch = Vec::new();
    for e in 0..epochs {
        completed.extend(drain_sequential(&mut tsu));
        tsu.retire_epoch(Epoch(e)).expect("retire drained pass");
        if e + 1 < epochs {
            tsu.open_epoch_queued(&mut scratch).expect("open next pass");
        }
    }
    let stats = tsu.stats();
    Outcome::new(completed, &stats)
}

/// TFluxSoft, streamed: one inline kernel drives the shared `GlobalFifo`
/// ready queue through `handle_completion` (the kernels' direct-update
/// path); at each pass boundary the drained epoch is retired and the
/// next opened, re-arming the context slots the pass just vacated.
fn soft_stream_outcome(program: &DdmProgram, cfg: TsuConfig, epochs: u64) -> Outcome {
    let cfg = TsuConfig { window: 2, ..cfg };
    let soft = SoftTsu::new(program, KERNELS, cfg);
    let mut completed = Vec::new();
    let mut scratch = Vec::new();
    for e in 0..epochs {
        loop {
            match soft.queue(0).try_pop() {
                FetchResult::Thread(i, ep) => {
                    completed.push(i);
                    soft.handle_completion(i, ep, &mut scratch)
                        .expect("soft stream completion");
                }
                _ => {
                    assert!(soft.finished(), "soft stream stalled mid-pass");
                    break;
                }
            }
        }
        soft.retire_epoch(Epoch(e)).expect("retire drained pass");
        if e + 1 < epochs {
            soft.open_epoch(&mut scratch).expect("open next pass");
        }
    }
    let stats = soft.stats();
    Outcome::new(completed, &stats)
}

fn assert_equivalent(bench: Bench) {
    let p = with_default_unroll(bench, Params::hard(KERNELS, 0, SizeClass::Small));
    let (program, _) = sim_setup(bench, &p);

    let soft = soft_outcome(&program, fifo());
    let hard = hard_outcome(&program, fifo());
    let seq = seq_outcome(&program);
    // funnel-enabled variants of the two concurrent paths, held to the
    // same funnel-free sequential baseline: batching is an implementation
    // detail of the completion hot path, not a semantic change
    let soft_f = soft_outcome(&program, batched());
    let hard_f = hard_outcome(&program, batched());

    let name = bench.name();
    assert_eq!(
        soft.completed.len(),
        program.total_instances(),
        "{name}: soft did not drain the program"
    );
    assert_eq!(
        soft.completed, hard.completed,
        "{name}: soft vs hard completion multiset"
    );
    assert_eq!(
        hard.completed, seq.completed,
        "{name}: hard vs sequential completion multiset"
    );
    assert_eq!(
        soft_f.completed, seq.completed,
        "{name}: funneled soft vs sequential completion multiset"
    );
    assert_eq!(
        hard_f.completed, seq.completed,
        "{name}: funneled hard vs sequential completion multiset"
    );
    assert_eq!(
        soft.rc_updates, hard.rc_updates,
        "{name}: rc_updates soft vs hard"
    );
    assert_eq!(
        hard.rc_updates, seq.rc_updates,
        "{name}: rc_updates hard vs sequential"
    );
    assert_eq!(
        soft_f.rc_updates, seq.rc_updates,
        "{name}: rc_updates funneled soft vs sequential (batching lost decrements)"
    );
    assert_eq!(
        hard_f.rc_updates, seq.rc_updates,
        "{name}: rc_updates funneled hard vs sequential (batching lost decrements)"
    );
    assert_eq!(
        soft.blocks_loaded, hard.blocks_loaded,
        "{name}: blocks_loaded soft vs hard"
    );
    assert_eq!(
        hard.blocks_loaded, seq.blocks_loaded,
        "{name}: blocks_loaded hard vs sequential"
    );
    assert_eq!(
        soft_f.blocks_loaded, seq.blocks_loaded,
        "{name}: blocks_loaded funneled soft vs sequential"
    );
    assert_eq!(
        hard_f.blocks_loaded, seq.blocks_loaded,
        "{name}: blocks_loaded funneled hard vs sequential"
    );
}

/// K streamed epochs must be bit-identical to K one-shot runs: the same
/// completion multiset K times over, K times the decrement ledger, K
/// times the block loads — on the sequential reference, the soft direct
/// path, and the simulated hardware device alike. Any cross-epoch
/// ready-count leakage (a late decrement surviving a re-arm) would break
/// the multiset or the ledger.
fn assert_stream_equivalent(bench: Bench) {
    let p = with_default_unroll(bench, Params::hard(KERNELS, 0, SizeClass::Small));
    let (program, _) = sim_setup(bench, &p);

    let one = seq_outcome(&program);
    let seq_s = seq_stream_outcome(&program, STREAM_EPOCHS);
    let soft_s = soft_stream_outcome(&program, fifo(), STREAM_EPOCHS);
    let hard_s = hard_stream_outcome(&program, fifo(), STREAM_EPOCHS);

    let mut k_copies: Vec<Instance> = std::iter::repeat(one.completed.iter().copied())
        .take(STREAM_EPOCHS as usize)
        .flatten()
        .collect();
    k_copies.sort_unstable();

    let name = bench.name();
    assert_eq!(
        seq_s.completed, k_copies,
        "{name}: streamed sequential vs {STREAM_EPOCHS}x one-shot multiset"
    );
    assert_eq!(
        soft_s.completed, k_copies,
        "{name}: streamed soft vs {STREAM_EPOCHS}x one-shot multiset"
    );
    assert_eq!(
        hard_s.completed, k_copies,
        "{name}: streamed hard vs {STREAM_EPOCHS}x one-shot multiset"
    );
    assert_eq!(
        seq_s.rc_updates,
        STREAM_EPOCHS * one.rc_updates,
        "{name}: streamed rc_updates vs {STREAM_EPOCHS}x one-shot"
    );
    assert_eq!(
        soft_s.rc_updates, seq_s.rc_updates,
        "{name}: rc_updates streamed soft vs sequential"
    );
    assert_eq!(
        hard_s.rc_updates, seq_s.rc_updates,
        "{name}: rc_updates streamed hard vs sequential"
    );
    assert_eq!(
        seq_s.blocks_loaded,
        STREAM_EPOCHS * one.blocks_loaded,
        "{name}: streamed blocks_loaded vs {STREAM_EPOCHS}x one-shot"
    );
    assert_eq!(
        soft_s.blocks_loaded, seq_s.blocks_loaded,
        "{name}: blocks_loaded streamed soft vs sequential"
    );
    assert_eq!(
        hard_s.blocks_loaded, seq_s.blocks_loaded,
        "{name}: blocks_loaded streamed hard vs sequential"
    );
}

#[test]
fn trapez_paths_agree() {
    assert_equivalent(Bench::Trapez);
}

#[test]
fn mmult_paths_agree() {
    assert_equivalent(Bench::Mmult);
}

#[test]
fn qsort_paths_agree() {
    assert_equivalent(Bench::Qsort);
}

#[test]
fn susan_paths_agree() {
    assert_equivalent(Bench::Susan);
}

#[test]
fn fft_paths_agree() {
    assert_equivalent(Bench::Fft);
}

#[test]
fn trapez_streams_agree() {
    assert_stream_equivalent(Bench::Trapez);
}

#[test]
fn mmult_streams_agree() {
    assert_stream_equivalent(Bench::Mmult);
}

#[test]
fn qsort_streams_agree() {
    assert_stream_equivalent(Bench::Qsort);
}

#[test]
fn fft_streams_agree() {
    assert_stream_equivalent(Bench::Fft);
}
