//! Equivalence of the TSU-unit compositions: the threaded TFluxSoft path
//! (kernels post-processing App completions directly through the sharded
//! Synchronization Memory + the emulator handling block transitions), the
//! simulated hardware TSU device, and the sequential reference executor
//! all drive the same `GraphMemory`/`SyncMemory` semantics — so under the
//! deterministic `GlobalFifo` policy they must complete the *same multiset
//! of instances* with the *same ready-count-update and block-load
//! bookkeeping* for every workload in the suite.

use tflux::core::prelude::*;
use tflux::core::tsu::{drain_sequential, TsuStats};
use tflux::runtime::{BodyTable, Runtime, RuntimeConfig};
use tflux::sim::tsu_dev::{DevFetch, TsuDevice};
use tflux::sim::TsuCosts;
use tflux::workloads::common::Params;
use tflux::workloads::setup::{sim_setup, with_default_unroll};
use tflux::workloads::sizes::SizeClass;
use tflux::workloads::Bench;

const KERNELS: u32 = 3;
/// Completions per funnel flush in the batched variants.
const FUNNEL_BATCH: u32 = 8;

fn fifo() -> TsuConfig {
    TsuConfig {
        capacity: 0,
        policy: SchedulingPolicy::GlobalFifo,
        flush: Default::default(),
    }
}

/// Same deterministic policy with completion funnels enabled: kernels
/// (soft) and cores (hard) accumulate App completions locally and flush
/// them as batches. Batching collapses physical RMWs but must not change
/// the completion multiset or the logical decrement ledger.
fn batched() -> TsuConfig {
    TsuConfig {
        flush: FlushPolicy::Batch { size: FUNNEL_BATCH },
        ..fifo()
    }
}

/// Completion multiset + the scheduling bookkeeping the paths must agree on.
struct Outcome {
    completed: Vec<Instance>,
    rc_updates: u64,
    blocks_loaded: u64,
}

impl Outcome {
    fn new(mut completed: Vec<Instance>, stats: &TsuStats) -> Self {
        completed.sort_unstable();
        Outcome {
            completed,
            rc_updates: stats.rc_updates,
            blocks_loaded: stats.blocks_loaded,
        }
    }
}

/// TFluxSoft: real kernel threads take the direct-update path for App
/// completions; the emulator drains Inlet/Outlet transitions from the TUB.
fn soft_outcome(program: &DdmProgram, cfg: TsuConfig) -> Outcome {
    let bodies = BodyTable::new(program); // no-op bodies: scheduling only
    let (report, spans) = Runtime::new(RuntimeConfig::with_kernels(KERNELS).tsu(cfg))
        .run_traced(program, &bodies)
        .expect("soft run failed");
    let completed = spans.iter().map(|s| s.instance).collect();
    Outcome::new(completed, &report.tsu)
}

/// TFluxHard: the memory-mapped TSU device wrapping `CoreTsu`, driven
/// core-by-core exactly like the simulated kernel loop.
fn hard_outcome(program: &DdmProgram, cfg: TsuConfig) -> Outcome {
    let tsu = CoreTsu::new(program, KERNELS, cfg);
    let mut dev = TsuDevice::new(tsu, TsuCosts::hard(), KERNELS);
    let mut completed = Vec::new();
    let mut now = 0u64;
    let mut core = 0u32;
    let mut parked_in_a_row = 0u32;
    loop {
        match dev.fetch(core, now).expect("fetch protocol error") {
            DevFetch::Thread(inst, at) => {
                parked_in_a_row = 0;
                completed.push(inst);
                let (core_free, _) = dev.complete(core, at, inst).expect("protocol error");
                now = core_free;
            }
            DevFetch::Parked => {
                parked_in_a_row += 1;
                assert!(parked_in_a_row <= KERNELS, "device drive deadlocked");
            }
            DevFetch::Exit(_) => break,
        }
        core = (core + 1) % KERNELS;
    }
    let stats = dev.tsu().stats();
    Outcome::new(completed, &stats)
}

/// The sequential reference executor over the same units.
fn seq_outcome(program: &DdmProgram) -> Outcome {
    let mut tsu = CoreTsu::new(program, KERNELS, fifo());
    let completed = drain_sequential(&mut tsu);
    let stats = tsu.stats();
    Outcome::new(completed, &stats)
}

fn assert_equivalent(bench: Bench) {
    let p = with_default_unroll(bench, Params::hard(KERNELS, 0, SizeClass::Small));
    let (program, _) = sim_setup(bench, &p);

    let soft = soft_outcome(&program, fifo());
    let hard = hard_outcome(&program, fifo());
    let seq = seq_outcome(&program);
    // funnel-enabled variants of the two concurrent paths, held to the
    // same funnel-free sequential baseline: batching is an implementation
    // detail of the completion hot path, not a semantic change
    let soft_f = soft_outcome(&program, batched());
    let hard_f = hard_outcome(&program, batched());

    let name = bench.name();
    assert_eq!(
        soft.completed.len(),
        program.total_instances(),
        "{name}: soft did not drain the program"
    );
    assert_eq!(
        soft.completed, hard.completed,
        "{name}: soft vs hard completion multiset"
    );
    assert_eq!(
        hard.completed, seq.completed,
        "{name}: hard vs sequential completion multiset"
    );
    assert_eq!(
        soft_f.completed, seq.completed,
        "{name}: funneled soft vs sequential completion multiset"
    );
    assert_eq!(
        hard_f.completed, seq.completed,
        "{name}: funneled hard vs sequential completion multiset"
    );
    assert_eq!(
        soft.rc_updates, hard.rc_updates,
        "{name}: rc_updates soft vs hard"
    );
    assert_eq!(
        hard.rc_updates, seq.rc_updates,
        "{name}: rc_updates hard vs sequential"
    );
    assert_eq!(
        soft_f.rc_updates, seq.rc_updates,
        "{name}: rc_updates funneled soft vs sequential (batching lost decrements)"
    );
    assert_eq!(
        hard_f.rc_updates, seq.rc_updates,
        "{name}: rc_updates funneled hard vs sequential (batching lost decrements)"
    );
    assert_eq!(
        soft.blocks_loaded, hard.blocks_loaded,
        "{name}: blocks_loaded soft vs hard"
    );
    assert_eq!(
        hard.blocks_loaded, seq.blocks_loaded,
        "{name}: blocks_loaded hard vs sequential"
    );
    assert_eq!(
        soft_f.blocks_loaded, seq.blocks_loaded,
        "{name}: blocks_loaded funneled soft vs sequential"
    );
    assert_eq!(
        hard_f.blocks_loaded, seq.blocks_loaded,
        "{name}: blocks_loaded funneled hard vs sequential"
    );
}

#[test]
fn trapez_paths_agree() {
    assert_equivalent(Bench::Trapez);
}

#[test]
fn mmult_paths_agree() {
    assert_equivalent(Bench::Mmult);
}

#[test]
fn qsort_paths_agree() {
    assert_equivalent(Bench::Qsort);
}

#[test]
fn susan_paths_agree() {
    assert_equivalent(Bench::Susan);
}

#[test]
fn fft_paths_agree() {
    assert_equivalent(Bench::Fft);
}
