//! §3 of the paper: the user-level runtime "allows for the system to
//! execute DDM and non-DDM applications simultaneously by means of simple
//! OS context switch operations". Two independent TFluxSoft runtimes plus a
//! plain computation thread run concurrently in one process and all finish
//! with correct results.

use std::sync::atomic::{AtomicU64, Ordering};
use tflux::core::prelude::*;
use tflux::runtime::{BodyTable, Runtime, RuntimeConfig, SharedVar};

fn fork_join(arity: u32) -> (DdmProgram, ThreadId, ThreadId) {
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::new("work", arity));
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(work, sink, ArcMapping::Reduction).unwrap();
    (b.build().unwrap(), work, sink)
}

fn run_sum_of_squares(arity: u32, kernels: u32) -> u64 {
    let (prog, work, sink) = fork_join(arity);
    let partial = SharedVar::<u64>::new(arity);
    let total = AtomicU64::new(0);
    let mut bodies = BodyTable::new(&prog);
    let pr = &partial;
    let tr = &total;
    bodies.set(work, move |ctx| {
        pr.put(ctx.context, (ctx.context.0 as u64).pow(2));
    });
    bodies.set(sink, move |_| {
        tr.store(pr.iter().sum(), Ordering::Relaxed);
    });
    Runtime::new(RuntimeConfig::with_kernels(kernels))
        .run(&prog, &bodies)
        .unwrap();
    total.load(Ordering::Relaxed)
}

#[test]
fn two_ddm_applications_and_a_plain_thread_coexist() {
    let expected = |n: u64| (0..n).map(|i| i * i).sum::<u64>();
    let (a, b, c) = std::thread::scope(|s| {
        let app_a = s.spawn(|| run_sum_of_squares(100, 3));
        let app_b = s.spawn(|| run_sum_of_squares(37, 2));
        // the "non-DDM application": a plain computation on its own thread
        let plain = s.spawn(|| (0..100u64).map(|i| i * i).sum::<u64>());
        (
            app_a.join().unwrap(),
            app_b.join().unwrap(),
            plain.join().unwrap(),
        )
    });
    assert_eq!(a, expected(100));
    assert_eq!(b, expected(37));
    assert_eq!(c, expected(100));
}

#[test]
fn repeated_sequential_runs_share_no_state() {
    // a Runtime is stateless between runs; programs can be re-run and
    // interleaved arbitrarily
    for _ in 0..3 {
        assert_eq!(run_sum_of_squares(10, 2), (0..10u64).map(|i| i * i).sum());
        assert_eq!(run_sum_of_squares(11, 4), (0..11u64).map(|i| i * i).sum());
    }
}

#[test]
fn one_runtime_runs_two_programs_back_to_back() {
    let rt = Runtime::new(RuntimeConfig::with_kernels(2));
    let (p1, w1, _) = fork_join(8);
    let (p2, w2, _) = fork_join(16);
    let count = AtomicU64::new(0);
    let cr = &count;
    let mut b1 = BodyTable::new(&p1);
    b1.set(w1, move |_| {
        cr.fetch_add(1, Ordering::Relaxed);
    });
    let mut b2 = BodyTable::new(&p2);
    b2.set(w2, move |_| {
        cr.fetch_add(1, Ordering::Relaxed);
    });
    rt.run(&p1, &b1).unwrap();
    rt.run(&p2, &b2).unwrap();
    assert_eq!(count.load(Ordering::Relaxed), 24);
}
