//! The portability claim: one DDM program, three platforms. The same
//! `DdmProgram` must execute completely — with identical instance counts
//! and block sequencing — on the threaded runtime, the hardware-TSU
//! simulator, and the Cell model; and a DDMCPP module must lower onto all
//! of them.

use std::sync::atomic::{AtomicUsize, Ordering};
use tflux::cell::work::{CellWork, FnCellWork};
use tflux::cell::{CellConfig, CellMachine};
use tflux::core::prelude::*;
use tflux::ddmcpp;
use tflux::runtime::{BodyTable, Runtime, RuntimeConfig};
use tflux::sim::work::{FnWork, InstanceWork};
use tflux::sim::{Machine, MachineConfig};

/// A program exercising every mapping kind across two blocks.
fn rich_program() -> DdmProgram {
    let mut b = ProgramBuilder::new();
    let b1 = b.block();
    let src = b.thread(b1, ThreadSpec::scalar("src"));
    let stage = b.thread(b1, ThreadSpec::new("stage", 12));
    let pair = b.thread(b1, ThreadSpec::new("pair", 12));
    let merge = b.thread(b1, ThreadSpec::new("merge", 6));
    let sink = b.thread(b1, ThreadSpec::scalar("sink"));
    b.arc(src, stage, ArcMapping::Broadcast).unwrap();
    b.arc(stage, pair, ArcMapping::OneToOne).unwrap();
    b.arc(pair, merge, ArcMapping::Group { factor: 2 }).unwrap();
    b.arc(merge, sink, ArcMapping::Reduction).unwrap();
    let b2 = b.block();
    let post = b.thread(b2, ThreadSpec::new("post", 8));
    let fin = b.thread(b2, ThreadSpec::scalar("fin"));
    b.arc(post, fin, ArcMapping::Reduction).unwrap();
    b.build().unwrap()
}

#[test]
fn same_program_runs_on_all_three_platforms() {
    let program = rich_program();
    let expect = program.total_instances();

    // 1. TFluxSoft: real threads
    let count = AtomicUsize::new(0);
    let mut bodies = BodyTable::new(&program);
    for t in 0..program.threads().len() {
        let count = &count;
        bodies.set(ThreadId(t as u32), move |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
    }
    let soft = Runtime::new(RuntimeConfig::with_kernels(3))
        .run(&program, &bodies)
        .unwrap();
    drop(bodies);
    assert_eq!(count.load(Ordering::Relaxed), expect);
    assert_eq!(soft.tsu.completions as usize, expect);

    // 2. TFluxHard: simulated hardware TSU
    let src = FnWork(|_: Instance, out: &mut InstanceWork| {
        out.compute = 500;
    });
    let hard = Machine::new(MachineConfig::bagle(4))
        .run(&program, &src)
        .unwrap();
    assert_eq!(hard.instances, expect);
    assert_eq!(hard.tsu.blocks_loaded, 2);

    // 3. TFluxCell: simulated PS3
    let src = FnCellWork(|_: Instance| CellWork::compute(500, 4096));
    let cell = CellMachine::new(CellConfig::ps3())
        .run(&program, &src)
        .unwrap();
    assert_eq!(cell.instances, expect);
    assert_eq!(cell.tsu.blocks_loaded, 2);

    // identical scheduling bookkeeping everywhere
    assert_eq!(soft.tsu.completions, hard.tsu.completions);
    assert_eq!(hard.tsu.completions, cell.tsu.completions);
    assert_eq!(soft.tsu.rc_updates, hard.tsu.rc_updates);
    assert_eq!(hard.tsu.rc_updates, cell.tsu.rc_updates);
}

const DDM_SOURCE: &str = r#"
#pragma ddm def N 48
#pragma ddm startprogram kernels(3)
#pragma ddm block 1
#pragma ddm for thread 1 range(0, N) unroll(4) export(v) cost(700)
#pragma ddm endfor
#pragma ddm thread 2 import(v) cost(300)
#pragma ddm endthread
#pragma ddm endblock
#pragma ddm block 2
#pragma ddm thread 3 arity(6) cost(400)
#pragma ddm endthread
#pragma ddm endblock
#pragma ddm endprogram
"#;

#[test]
fn ddmcpp_module_lowers_and_runs_everywhere() {
    let module = ddmcpp::parse(DDM_SOURCE).unwrap();
    let program = ddmcpp::lower::to_program(&module).unwrap();
    let expect = program.total_instances();

    let bodies = BodyTable::new(&program); // no-op bodies: scheduling only
    let soft = Runtime::new(RuntimeConfig::with_kernels(3))
        .run(&program, &bodies)
        .unwrap();
    assert_eq!(soft.tsu.completions as usize, expect);

    let src = FnWork(|_: Instance, out: &mut InstanceWork| out.compute = 100);
    let hard = Machine::new(MachineConfig::bagle(3))
        .run(&program, &src)
        .unwrap();
    assert_eq!(hard.instances, expect);

    let csrc = FnCellWork(|_: Instance| CellWork::compute(100, 1024));
    let cell = CellMachine::new(CellConfig::ps3().with_spes(3))
        .run(&program, &csrc)
        .unwrap();
    assert_eq!(cell.instances, expect);
}

#[test]
fn ddmcpp_generates_for_every_backend() {
    for backend in [
        ddmcpp::Backend::Soft,
        ddmcpp::Backend::Sim,
        ddmcpp::Backend::Cell,
    ] {
        let out = ddmcpp::preprocess(DDM_SOURCE, backend).unwrap();
        assert!(out.contains("ProgramBuilder"), "{backend:?}");
        assert!(out.contains("pub const N: i64 = 48;"), "{backend:?}");
    }
    // backend-specific API surface
    let soft = ddmcpp::preprocess(DDM_SOURCE, ddmcpp::Backend::Soft).unwrap();
    assert!(soft.contains("tflux_runtime"));
    let sim = ddmcpp::preprocess(DDM_SOURCE, ddmcpp::Backend::Sim).unwrap();
    assert!(sim.contains("MachineConfig::bagle"));
    let cell = ddmcpp::preprocess(DDM_SOURCE, ddmcpp::Backend::Cell).unwrap();
    assert!(cell.contains("CellConfig::ps3"));
}

#[test]
fn deterministic_simulators_cross_check() {
    // the two event-driven platforms are bit-deterministic across runs
    let program = rich_program();
    let src = FnWork(|i: Instance, out: &mut InstanceWork| {
        out.compute = 100 + i.context.0 as u64 * 13;
    });
    let a = Machine::new(MachineConfig::bagle(5))
        .run(&program, &src)
        .unwrap();
    let b = Machine::new(MachineConfig::bagle(5))
        .run(&program, &src)
        .unwrap();
    assert_eq!(a.cycles, b.cycles);

    let csrc = FnCellWork(|i: Instance| CellWork {
        compute: 100 + i.context.0 as u64 * 13,
        import_bytes: 256,
        export_bytes: 128,
        ls_bytes: 8192,
    });
    let ca = CellMachine::new(CellConfig::ps3())
        .run(&program, &csrc)
        .unwrap();
    let cb = CellMachine::new(CellConfig::ps3())
        .run(&program, &csrc)
        .unwrap();
    assert_eq!(ca.cycles, cb.cycles);
}
