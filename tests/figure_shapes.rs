//! Shape checks for the paper's evaluation results: the reproduction is not
//! expected to match the 2008 testbed's absolute numbers, but who wins, by
//! roughly what factor, and where the crossovers fall must hold. These
//! tests pin those properties so calibration regressions are caught.

use tflux::cell::{CellConfig, CellMachine};
use tflux::sim::{Machine, MachineConfig};
use tflux::workloads::common::Params;
use tflux::workloads::setup::{
    cell_baseline, cell_setup, sim_baseline, sim_setup, with_default_unroll,
};
use tflux::workloads::sizes::SizeClass;
use tflux::workloads::Bench;

fn hard_speedup(bench: Bench, kernels: u32, size: SizeClass) -> f64 {
    let p = with_default_unroll(bench, Params::hard(kernels, 0, size));
    let (prog, src) = sim_setup(bench, &p);
    let (sprog, ssrc) = sim_baseline(bench, &p);
    let m = Machine::new(MachineConfig::bagle(kernels));
    let seq = m.run_sequential(&sprog, ssrc.as_ref());
    m.run(&prog, src.as_ref()).unwrap().speedup_over(&seq)
}

fn cell_speedup(bench: Bench, spes: u32, size: SizeClass) -> f64 {
    let p = with_default_unroll(bench, Params::cell(spes, 0, size));
    let (prog, src) = cell_setup(bench, &p);
    let (sprog, ssrc) = cell_baseline(bench, &p);
    let m = CellMachine::new(CellConfig::ps3().with_spes(spes));
    let seq = m.run_sequential(&sprog, ssrc.as_ref()).unwrap();
    m.run(&prog, src.as_ref()).unwrap().speedup_over(&seq)
}

#[test]
fn trapez_is_near_linear_on_hard() {
    // paper: 25.6x at 27 kernels
    let s = hard_speedup(Bench::Trapez, 27, SizeClass::Medium);
    assert!(s > 22.0 && s <= 27.0, "TRAPEZ@27 = {s}");
    let s8 = hard_speedup(Bench::Trapez, 8, SizeClass::Medium);
    assert!(s8 > 7.5 && s8 <= 8.0, "TRAPEZ@8 = {s8}");
}

#[test]
fn mmult_scales_but_below_ideal_due_to_memory_traffic() {
    // paper: ~24x at 27 kernels Large, with coherency misses the limiter
    let s27 = hard_speedup(Bench::Mmult, 27, SizeClass::Medium);
    assert!(s27 > 15.0 && s27 < 25.0, "MMULT@27 medium = {s27}");
    // small problems plateau much lower (B refetch dominates)
    let small = hard_speedup(Bench::Mmult, 27, SizeClass::Small);
    assert!(small < s27, "small ({small}) must trail medium ({s27})");
}

#[test]
fn qsort_plateaus_at_the_merge_bottleneck() {
    // paper: ~10x at 27 kernels — the two-level merge tree is the cap
    let s27 = hard_speedup(Bench::Qsort, 27, SizeClass::Large);
    let s16 = hard_speedup(Bench::Qsort, 16, SizeClass::Large);
    assert!(s27 < 13.0, "QSORT@27 = {s27} (must plateau)");
    assert!(
        (s27 - s16).abs() < 3.0,
        "QSORT 16->27 must be nearly flat: {s16} -> {s27}"
    );
}

#[test]
fn susan_parallelizes_well_across_phases() {
    // paper: 24.8x at 27 kernels
    let s = hard_speedup(Bench::Susan, 27, SizeClass::Medium);
    assert!(s > 20.0, "SUSAN@27 = {s}");
}

#[test]
fn fft_is_limited_by_phase_synchronization() {
    // paper: ~19x at 27 Large; always below TRAPEZ at equal config
    let fft = hard_speedup(Bench::Fft, 27, SizeClass::Large);
    let trapez = hard_speedup(Bench::Trapez, 27, SizeClass::Large);
    assert!(fft > 10.0, "FFT@27 = {fft}");
    assert!(fft < trapez, "FFT ({fft}) must trail TRAPEZ ({trapez})");
}

#[test]
fn speedup_grows_with_problem_size() {
    // §6.1.2: "for all cases the speedup increases for larger problem
    // sizes" — check the benchmarks with a strong size effect
    for bench in [Bench::Mmult, Bench::Fft] {
        let small = hard_speedup(bench, 16, SizeClass::Small);
        let large = hard_speedup(bench, 16, SizeClass::Large);
        assert!(
            large >= small * 0.95,
            "{bench:?}: large ({large}) must not trail small ({small})"
        );
    }
}

#[test]
fn cell_qsort_is_the_weakest_cell_benchmark() {
    // paper Fig. 7: QSORT on the Cell stays under ~2.1x (overheads not
    // amortized at LS-constrained sizes; SPE scalar penalty vs PPE baseline)
    let qsort = cell_speedup(Bench::Qsort, 6, SizeClass::Large);
    assert!(qsort < 3.5, "cell QSORT = {qsort}");
    for other in [Bench::Trapez, Bench::Mmult, Bench::Susan] {
        let s = cell_speedup(other, 6, SizeClass::Large);
        assert!(
            s > qsort,
            "{other:?} ({s}) must beat QSORT ({qsort}) on the Cell"
        );
    }
}

#[test]
fn qsort_tree_depth_has_a_knee() {
    // §6.1.2: deeper merge trees help up to a point, then the extra
    // steps cost more than the parallelism they buy
    let pts = tflux_bench::figures::qsort_tree_depth(false);
    let d0 = pts.first().unwrap().2;
    let best = pts.iter().map(|p| p.2).fold(0.0f64, f64::max);
    let last = pts.last().unwrap().2;
    assert!(best > d0, "deeper than 0 must help somewhere");
    assert!(last < best, "the deepest tree must fall off the peak");
}

#[test]
fn headline_averages_are_in_the_paper_band() {
    // paper: 21x average at 27 nodes (hard); ~4.4x at 6 nodes (soft+cell)
    let hard: f64 = Bench::ALL
        .iter()
        .map(|&b| hard_speedup(b, 27, SizeClass::Large))
        .sum::<f64>()
        / 5.0;
    assert!(hard > 16.0 && hard < 25.0, "hard average = {hard}");

    let cell: f64 = Bench::CELL
        .iter()
        .map(|&b| cell_speedup(b, 6, SizeClass::Large))
        .sum::<f64>()
        / 4.0;
    assert!(cell > 3.0 && cell < 6.0, "cell average = {cell}");
}
