//! End-to-end correctness: every benchmark's DDM decomposition, executed on
//! the real threaded TFluxSoft runtime, produces the same result as its
//! sequential reference.

use tflux::workloads::common::Params;
use tflux::workloads::setup::verify_runtime;
use tflux::workloads::sizes::SizeClass;
use tflux::workloads::Bench;

#[test]
fn trapez_matches_reference_on_runtime() {
    let p = Params::soft(4, 8192, SizeClass::Small);
    verify_runtime(Bench::Trapez, &p).unwrap();
}

#[test]
fn mmult_matches_reference_on_runtime() {
    // simulated Small size (64x64) keeps the threaded run fast
    let p = Params::hard(4, 4, SizeClass::Small);
    verify_runtime(Bench::Mmult, &p).unwrap();
}

#[test]
fn qsort_matches_reference_on_runtime() {
    let p = Params::cell(4, 1, SizeClass::Medium); // 6K elements
    verify_runtime(Bench::Qsort, &p).unwrap();
}

#[test]
fn susan_matches_reference_on_runtime() {
    let p = Params::soft(4, 16, SizeClass::Small);
    verify_runtime(Bench::Susan, &p).unwrap();
}

#[test]
fn fft_matches_reference_on_runtime() {
    let p = Params::soft(4, 4, SizeClass::Small);
    verify_runtime(Bench::Fft, &p).unwrap();
}

#[test]
fn every_benchmark_verifies_with_one_kernel() {
    // single kernel = fully serialized; results must be identical
    for bench in Bench::ALL {
        let p = match bench {
            Bench::Trapez => Params::soft(1, 16384, SizeClass::Small),
            Bench::Mmult => Params::hard(1, 8, SizeClass::Small),
            Bench::Qsort => Params::cell(1, 1, SizeClass::Small),
            Bench::Susan => Params::soft(1, 32, SizeClass::Small),
            Bench::Fft => Params::soft(1, 8, SizeClass::Small),
        };
        verify_runtime(bench, &p).unwrap_or_else(|e| panic!("{bench:?}: {e}"));
    }
}

#[test]
fn odd_kernel_and_unroll_combinations() {
    // ragged partitions, kernels that don't divide arity
    verify_runtime(Bench::Mmult, &Params::hard(3, 5, SizeClass::Small)).unwrap();
    verify_runtime(Bench::Susan, &Params::soft(5, 7, SizeClass::Small)).unwrap();
    verify_runtime(Bench::Fft, &Params::soft(3, 3, SizeClass::Small)).unwrap();
    verify_runtime(Bench::Qsort, &Params::cell(5, 1, SizeClass::Small)).unwrap();
}
