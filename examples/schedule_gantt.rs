//! Visualize a DDM schedule: run QSORT on the simulated TFluxHard machine
//! with tracing enabled and print a per-core Gantt chart — the two-level
//! merge-tree bottleneck of §6.1.2 is visible as the lone `#` tail after
//! the parallel sort burst.
//!
//! ```sh
//! cargo run --release --example schedule_gantt
//! ```

use tflux::sim::{Machine, MachineConfig};
use tflux::workloads::common::Params;
use tflux::workloads::qsort;
use tflux::workloads::sizes::SizeClass;

fn main() {
    let kernels = 8;
    let p = Params::hard(kernels, 1, SizeClass::Small);
    let (prog, ids) = qsort::program(&p);
    let src = qsort::sim_source(&p, ids);
    let machine = Machine::new(MachineConfig::bagle(kernels));
    let (report, trace) = machine.run_traced(&prog, &src).expect("sim run");

    println!(
        "QSORT on {kernels} kernels — {} instances, {} cycles\n",
        report.instances, report.cycles
    );
    print!("{}", trace.gantt(&prog, kernels, 100));
    println!("\nlegend: # application DThread, | inlet/outlet, . idle");

    let longest = trace.longest().expect("nonempty trace");
    println!(
        "\nlongest span: {} on core {} ({} cycles — the serial final merge)",
        longest.instance,
        longest.core,
        longest.end - longest.start
    );
    let busy = trace.core_busy(kernels);
    println!("per-core busy cycles: {busy:?}");
    println!("\nper-DThread-template breakdown (busiest first):");
    println!(
        "{:<16} {:>10} {:>14} {:>12}",
        "template", "instances", "total cycles", "max span"
    );
    for (name, n, total, max) in trace.per_template(&prog) {
        println!("{name:<16} {n:>10} {total:>14} {max:>12}");
    }
    println!(
        "utilization {:.0}% — QSORT's plateau in Fig. 5 is this idle tail",
        report.utilization() * 100.0
    );
    assert!(trace.find_overlap().is_none());
}
