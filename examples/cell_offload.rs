//! TFluxCell: run the MMULT workload on the simulated Cell/BE, showing the
//! Local-Store / DMA cost structure — and the hard Local-Store limit that
//! stopped the paper from running large QSORT inputs on the PS3.
//!
//! ```sh
//! cargo run --release --example cell_offload
//! ```

use tflux::cell::{CellConfig, CellMachine};
use tflux::workloads::common::Params;
use tflux::workloads::setup::{cell_baseline, cell_setup};
use tflux::workloads::sizes::{Platform, SizeClass};
use tflux::workloads::Bench;

fn main() {
    println!("MMULT on the simulated PS3 (1 PPE + SPEs, 256 KB Local Stores)\n");
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>8}",
        "SPEs", "size", "cycles", "speedup", "DMA%"
    );
    for &size in &[SizeClass::Small, SizeClass::Medium, SizeClass::Large] {
        for spes in [2u32, 4, 6] {
            let p = Params::cell(spes, 64, size);
            let (prog, src) = cell_setup(Bench::Mmult, &p);
            let (sprog, ssrc) = cell_baseline(Bench::Mmult, &p);
            let machine = CellMachine::new(CellConfig::ps3().with_spes(spes));
            let seq = machine
                .run_sequential(&sprog, ssrc.as_ref())
                .expect("baseline");
            let par = machine.run(&prog, src.as_ref()).expect("run");
            println!(
                "{spes:>6} {:>8} {:>10} {:>9.1}x {:>7.1}%",
                format!(
                    "{}²",
                    tflux::workloads::sizes::mmult_n(size, Platform::Cell)
                ),
                par.cycles,
                par.speedup_over(&seq),
                par.dma_fraction() * 100.0
            );
        }
    }

    // The Local Store limit, §6.3: QSORT beyond ~12 K elements cannot keep
    // the merge working set resident.
    println!("\nQSORT Local-Store limit:");
    let ok = Params::cell(6, 1, SizeClass::Large); // 12 K elements: fits
    let (prog, src) = cell_setup(Bench::Qsort, &ok);
    let machine = CellMachine::new(CellConfig::ps3());
    let r = machine.run(&prog, src.as_ref()).expect("12K fits");
    println!(
        "  12 K elements: OK, peak LS use {} KB of 256 KB",
        r.peak_ls / 1024
    );

    let too_big = Params {
        kernels: 6,
        unroll: 1,
        size: SizeClass::Large,
        platform: Platform::Native, // 50 K elements, the size the paper could NOT run
    };
    let (prog, src) = cell_setup(Bench::Qsort, &too_big);
    match machine.run(&prog, src.as_ref()) {
        Err(e) => println!("  50 K elements: {e}"),
        Ok(_) => unreachable!("50K must overflow the Local Store"),
    }
}
