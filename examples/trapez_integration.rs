//! TRAPEZ end-to-end: the same DDM program runs on the real threaded
//! runtime (for the numeric answer) and on the simulated TFluxHard machine
//! (for the speedup curve), demonstrating the TFlux portability claim —
//! one decomposition, many platforms.
//!
//! ```sh
//! cargo run --release --example trapez_integration
//! ```

use tflux::sim::{Machine, MachineConfig};
use tflux::workloads::common::Params;
use tflux::workloads::sizes::SizeClass;
use tflux::workloads::trapez;

fn main() {
    // --- native execution on the TFluxSoft runtime ---
    let p = Params::soft(4, 8192, SizeClass::Small);
    let ddm = trapez::run_ddm(&p);
    let seq = trapez::seq(tflux::workloads::sizes::trapez_intervals(p.size));
    println!("TRAPEZ ∫₀¹ 4/(1+x²) dx:");
    println!("  sequential reference : {seq:.12}");
    println!("  DDM on 4 kernels     : {ddm:.12}");
    println!(
        "  |error vs π|         : {:.2e}",
        (ddm - std::f64::consts::PI).abs()
    );
    assert!((ddm - seq).abs() < 1e-9);

    // --- the same program on the simulated hardware-TSU machine ---
    println!("\nTFluxHard (simulated Bagle, hardware TSU Group):");
    println!("{:>8} {:>10}", "kernels", "speedup");
    for kernels in [2u32, 4, 8, 16, 27] {
        let p = Params::hard(kernels, 512, SizeClass::Medium);
        let (prog, ids) = trapez::program(&p);
        let arity = prog.thread(ids.work).arity;
        let src = trapez::sim_source(&p, ids, arity);
        let machine = Machine::new(MachineConfig::bagle(kernels));
        let baseline = machine.run_sequential(&prog, &src);
        let parallel = machine.run(&prog, &src).expect("sim run");
        println!("{kernels:>8} {:>9.1}x", parallel.speedup_over(&baseline));
    }
    println!("\n(near-linear, as in Fig. 5 of the paper: TRAPEZ has almost no");
    println!(" inter-DThread data transfer beyond the final reduction)");
}
