//! DDMCPP in action: preprocess a C-style source annotated with
//! `#pragma ddm` directives, show the generated TFluxSoft Rust program,
//! and execute the same module directly by lowering it onto the runtime —
//! proving the front-end AST and the generated code describe the same DDM
//! program.
//!
//! ```sh
//! cargo run --example preprocess_demo
//! ```

use tflux::core::tsu::{drain_sequential, CoreTsu, TsuConfig};
use tflux::ddmcpp::{self, Backend};

const SOURCE: &str = r#"
// vector normalization, DDM style
#pragma ddm def N 1024
#pragma ddm var double data size(N)
#pragma ddm startprogram kernels(4)
#pragma ddm block 1
#pragma ddm for thread 1 range(0, N) unroll(64) export(data) cost(900)
    data.lock().unwrap()[i as usize] = (i as f64).sin();
#pragma ddm endfor
#pragma ddm thread 2 import(data) cost(2000)
    let d = data.lock().unwrap();
    let norm: f64 = d.iter().map(|x| x * x).sum::<f64>().sqrt();
    eprintln!("norm = {norm:.6}");
#pragma ddm endthread
#pragma ddm endblock
#pragma ddm endprogram
"#;

fn main() {
    // front-end: parse the module
    let module = ddmcpp::parse(SOURCE).expect("parse");
    println!(
        "parsed module: {} block(s), {} thread(s), kernels={:?}",
        module.blocks.len(),
        module.thread_count(),
        module.kernels
    );
    for block in &module.blocks {
        for t in &block.threads {
            println!(
                "  thread {} arity {} imports {:?} exports {:?} depends {:?}",
                t.id,
                t.shape.arity(),
                t.imports.iter().map(|i| &i.var).collect::<Vec<_>>(),
                t.exports,
                t.depends.iter().map(|d| d.thread).collect::<Vec<_>>(),
            );
        }
    }

    // back-end: generate TFluxSoft Rust
    let generated = ddmcpp::preprocess(SOURCE, Backend::Soft).expect("codegen");
    println!("\n==== generated (soft backend) ====");
    for (i, line) in generated.lines().enumerate() {
        println!("{:>3} | {line}", i + 1);
    }

    // semantic check: lower the module straight to a core program and
    // drive it with the reference executor
    let lowered = ddmcpp::lower::to_program(&module).expect("lower");
    let mut tsu = CoreTsu::new(&lowered, 4, TsuConfig::default());
    let order = drain_sequential(&mut tsu);
    println!("\n==== execution order (reference executor) ====");
    println!(
        "{} instances; first 5: {:?}",
        order.len(),
        &order[..5.min(order.len())]
    );
    // and the synchronization graph for graphviz users
    println!("\n==== DOT (render with `dot -Tsvg`) ====");
    print!("{}", tflux::core::graph::to_dot(&lowered));
}
