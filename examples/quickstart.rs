//! Quickstart: build a small DDM program and run it on the TFluxSoft
//! runtime.
//!
//! The program computes a sum of squares with a fork/join synchronization
//! graph: a loop DThread of 16 instances produces partial results, and a
//! scalar sink DThread reduces them once — and only once — every producer
//! has completed. No locks, no barriers: the TSU's ready counts provide
//! all the synchronization.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tflux::core::prelude::*;
use tflux::runtime::{BodyTable, Runtime, RuntimeConfig, SharedVar};

fn main() {
    // 1. Describe the synchronization graph.
    let mut builder = ProgramBuilder::new();
    let block = builder.block();
    let work = builder.thread(block, ThreadSpec::new("square", 16));
    let sink = builder.thread(block, ThreadSpec::scalar("reduce"));
    builder
        .arc(work, sink, ArcMapping::Reduction)
        .expect("valid arc");
    let program = builder.build().expect("valid DDM program");

    // 2. Attach bodies. DThreads communicate through SharedVar slots:
    //    each producer writes its own slot; the consumer reads them all.
    let partial = SharedVar::<u64>::new(16);
    let total = SharedVar::<u64>::scalar();
    let mut bodies = BodyTable::new(&program);
    let (partial_ref, total_ref) = (&partial, &total);
    bodies.set(work, move |ctx| {
        let i = ctx.context.0 as u64;
        partial_ref.put(ctx.context, i * i);
    });
    bodies.set(sink, move |_| {
        total_ref.put(Context(0), partial_ref.iter().sum());
    });

    // 3. Run on 4 kernel threads (+ the TSU Emulator).
    let report = Runtime::new(RuntimeConfig::with_kernels(4))
        .run(&program, &bodies)
        .expect("run to completion");

    println!("sum of squares 0..16 = {}", total.value());
    println!(
        "executed {} DThread instances across {} kernels in {:?}",
        report.total_executed(),
        report.kernels.len(),
        report.wall
    );
    println!(
        "TSU: {} ready-count updates, {} blocks loaded; TUB pushes: {}",
        report.tsu.rc_updates, report.tsu.blocks_loaded, report.tub.pushes
    );
    assert_eq!(*total.value(), (0..16u64).map(|i| i * i).sum());
}
