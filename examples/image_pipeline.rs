//! A SUSAN-style three-phase image pipeline built directly on the public
//! API, showing how **DDM blocks** express phase barriers: generate an
//! image, smooth it, then compute a per-band histogram — three blocks whose
//! Inlet/Outlet chaining guarantees each phase sees the previous phase's
//! complete output, with no explicit barrier in user code.
//!
//! ```sh
//! cargo run --release --example image_pipeline
//! ```

use tflux::core::prelude::*;
use tflux::runtime::{BodyTable, Runtime, RuntimeConfig, SharedVar};
use tflux::workloads::susan;

const W: usize = 320;
const H: usize = 240;
const BAND: usize = 16; // rows per DThread instance
const BANDS: u32 = (H / BAND) as u32;

fn main() {
    // Three blocks = three phases; the TSU runs them strictly in order.
    let mut b = ProgramBuilder::new();
    let b1 = b.block();
    let generate = b.thread(b1, ThreadSpec::new("generate", BANDS));
    let b2 = b.block();
    let smooth = b.thread(b2, ThreadSpec::new("smooth", BANDS));
    let b3 = b.block();
    let histogram = b.thread(b3, ThreadSpec::new("histogram", BANDS));
    let collect = b.thread(b3, ThreadSpec::scalar("collect"));
    b.arc(histogram, collect, ArcMapping::Reduction).unwrap();
    let program = b.build().unwrap();

    let lut = susan::brightness_lut();
    let img = SharedVar::<Vec<u8>>::new(BANDS);
    let smoothed = SharedVar::<Vec<u8>>::new(BANDS);
    let hists = SharedVar::<[u32; 8]>::new(BANDS);
    let final_hist = SharedVar::<[u32; 8]>::scalar();

    let mut bodies = BodyTable::new(&program);
    let (img_r, sm_r, hi_r, fin_r, lut_r) = (&img, &smoothed, &hists, &final_hist, &lut);

    bodies.set(generate, move |ctx| {
        let y0 = ctx.context.idx() * BAND;
        let mut band = Vec::with_capacity(BAND * W);
        for y in y0..y0 + BAND {
            band.extend_from_slice(&susan::gen_row(W, H, y));
        }
        img_r.put(ctx.context, band);
    });

    bodies.set(smooth, move |ctx| {
        // rebuild a halo view from neighbour bands (block 1 is complete)
        let bi = ctx.context.idx();
        let lo = bi * BAND;
        let halo_lo = lo.saturating_sub(susan::RADIUS);
        let halo_hi = (lo + BAND + susan::RADIUS).min(H);
        let mut halo = Vec::with_capacity((halo_hi - halo_lo) * W);
        for y in halo_lo..halo_hi {
            let band = img_r.get(Context((y / BAND) as u32));
            let row = y % BAND;
            halo.extend_from_slice(&band[row * W..(row + 1) * W]);
        }
        let out = susan::smooth_band(
            &halo,
            W,
            halo_hi - halo_lo,
            lo - halo_lo,
            lo - halo_lo + BAND,
            lut_r,
        );
        sm_r.put(ctx.context, out);
    });

    bodies.set(histogram, move |ctx| {
        let mut h = [0u32; 8];
        for &px in sm_r.get(ctx.context) {
            h[(px >> 5) as usize] += 1;
        }
        hi_r.put(ctx.context, h);
    });

    bodies.set(collect, move |_| {
        let mut total = [0u32; 8];
        for h in hi_r.iter() {
            for (t, v) in total.iter_mut().zip(h) {
                *t += v;
            }
        }
        fin_r.put(Context(0), total);
    });

    let report = Runtime::new(RuntimeConfig::with_kernels(4))
        .run(&program, &bodies)
        .expect("pipeline run");

    let hist = final_hist.value();
    println!(
        "{W}x{H} image, 3-phase DDM pipeline ({} instances, {:?}):",
        report.total_executed(),
        report.wall
    );
    println!("brightness histogram after smoothing (8 buckets of 32):");
    let max = hist.iter().copied().max().unwrap_or(1).max(1);
    for (i, &count) in hist.iter().enumerate() {
        let bar = "#".repeat((count * 40 / max) as usize);
        println!("  [{:3}-{:3}] {count:>6} {bar}", i * 32, i * 32 + 31);
    }
    assert_eq!(hist.iter().map(|&c| c as usize).sum::<usize>(), W * H);
    println!(
        "\nblocks loaded: {} (one per phase)",
        report.tsu.blocks_loaded
    );
}
