//! Capacity planning with a custom machine model: scale a hypothetical
//! future CMP from 8 to 56 cores and watch where each benchmark's scaling
//! breaks — TSU command serialization, bus bandwidth, or algorithmic
//! bottlenecks. Everything the paper measured at 27 cores, extrapolated.
//!
//! ```sh
//! cargo run --release --example custom_machine
//! ```

use tflux::sim::{CacheConfig, Machine, MachineConfig, Topology, TsuCosts};
use tflux::workloads::common::Params;
use tflux::workloads::setup::{sim_baseline, sim_setup, with_default_unroll};
use tflux::workloads::sizes::SizeClass;
use tflux::workloads::Bench;

/// A 2012-flavoured CMP: more cores, bigger L2 slices, faster memory.
fn future_cmp(cores: u32) -> MachineConfig {
    MachineConfig {
        cores,
        l1: CacheConfig {
            size: 32 * 1024,
            line: 64,
            assoc: 8,
            read_lat: 3,
            write_lat: 1,
        },
        l2: CacheConfig {
            size: 4 * 1024 * 1024,
            line: 64,
            assoc: 16,
            read_lat: 18,
            write_lat: 18,
        },
        l2_group: 4, // 4 cores share an L2 slice
        mem_lat: 160,
        bus_transfer: 2,
        bus_control: 1,
        c2c_lat: 30,
        tsu: TsuCosts::hard(),
        tsu_groups: 2, // the paper's §3.3 multi-group extension
        topology: Topology::flat(),
        merge_round: 0, // auto: one conservative TSU window per round
    }
}

fn main() {
    println!("scaling study on a hypothetical 2-TSU-group CMP (Large sizes)\n");
    println!(
        "{:<8} {:>6} {:>6} {:>6} {:>6}",
        "Bench", "@8", "@16", "@32", "@56"
    );
    for bench in Bench::ALL {
        let mut row = format!("{:<8}", bench.name());
        for cores in [8u32, 16, 32, 56] {
            let p = with_default_unroll(bench, Params::hard(cores, 0, SizeClass::Large));
            let machine = Machine::new(future_cmp(cores));
            let (prog, src) = sim_setup(bench, &p);
            let (sprog, ssrc) = sim_baseline(bench, &p);
            let seq = machine.run_sequential(&sprog, ssrc.as_ref());
            let par = machine.run(&prog, src.as_ref()).expect("sim run");
            row.push_str(&format!(" {:>5.1}x", par.speedup_over(&seq)));
        }
        println!("{row}");
    }
    println!("\nTRAPEZ/SUSAN keep scaling; QSORT hits its merge wall regardless of");
    println!("cores; MMULT and FFT bend as the shared bus and reuse distances bite.");
}
