//! # TFlux — umbrella crate
//!
//! A from-scratch Rust reproduction of *TFlux: A Portable Platform for
//! Data-Driven Multithreading on Commodity Multicore Systems* (Stavrou et
//! al., ICPP 2008). This facade re-exports every subsystem so examples and
//! downstream users can depend on a single crate:
//!
//! * [`core`] — the DDM model: DThreads, synchronization graphs, DDM
//!   blocks, and the target-independent TSU state machine.
//! * [`runtime`] — TFluxSoft: the real threaded runtime with a software TSU
//!   Emulator, segmented TUB, and per-kernel Synchronization Memories.
//! * [`sim`] — TFluxHard: a deterministic discrete-event multicore
//!   simulator with MESI caches and a memory-mapped hardware TSU Group.
//! * [`cell`] — TFluxCell: a simulated Cell/BE (PPE + SPEs, Local Stores,
//!   DMA, mailboxes) running DDM programs.
//! * [`ddmcpp`] — the DDM C preprocessor: `#pragma ddm` front-end and
//!   per-target code-generating back-ends.
//! * [`workloads`] — the paper's five-benchmark suite (TRAPEZ, MMULT,
//!   QSORT, SUSAN, FFT) with sequential references, DDM decompositions and
//!   simulator trace models.
//!
//! See `README.md` for a walkthrough and `EXPERIMENTS.md` for the
//! paper-figure reproductions.

pub use tflux_cell as cell;
pub use tflux_core as core;
pub use tflux_ddmcpp as ddmcpp;
pub use tflux_runtime as runtime;
pub use tflux_sim as sim;
pub use tflux_workloads as workloads;
